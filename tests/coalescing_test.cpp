// Request-coalescing tests: concurrent Gets for one hot object aggregate
// onto a single in-flight fetch (the directory's pending-interest window),
// the first landed copy fans out through the broadcast-tree machinery, and
// the hard races resolve honestly — Delete mid-coalesce fails attached
// waiters kDeleted, a dead fetcher restarts the window, a dead producer
// re-resolves survivors through a lineage re-Put, and an evicted fan-out
// source is retracted and retried. Plus: zipf-serving scenario runs are
// bit-identical across repeats and engine shard counts.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"
#include "workload/driver.h"
#include "workload/scenarios.h"

namespace hoplite::core {
namespace {

HopliteCluster::Options CoalescingOptions(int nodes, std::int64_t capacity = 0) {
  HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.cache.coalescing = true;
  options.store_capacity_bytes = capacity;
  return options;
}

/// Total bytes any node put on the wire (the figure's bytes-on-wire metric).
std::int64_t WireBytes(HopliteCluster& cluster) {
  std::int64_t total = 0;
  for (NodeID n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.network().TrafficOf(n).bytes_sent;
  }
  return total;
}

/// Puts an inline hot object and issues one concurrent Get per other node.
/// Returns the per-getter results (index 0 = node 1).
std::vector<std::optional<store::Buffer>> ConcurrentGetBurst(HopliteCluster& cluster,
                                                             ObjectID object) {
  std::vector<std::optional<store::Buffer>> got(
      static_cast<std::size_t>(cluster.num_nodes() - 1));
  for (NodeID getter = 1; getter < cluster.num_nodes(); ++getter) {
    cluster.client(getter)
        .Get(object, GetOptions{.read_only = true})
        .Then([&got, getter](const store::Buffer& b) {
          got[static_cast<std::size_t>(getter) - 1] = b;
        });
  }
  cluster.RunAll();
  return got;
}

// ----------------------------------------------------------------------
// The coalescing win: one origin fetch, fan-out from landed copies.
// ----------------------------------------------------------------------

TEST(CoalescingTest, ConcurrentInlineGettersShareOneOriginFetch) {
  // Two identical Get bursts, coalescing off vs on. Per-Get serving pays
  // the shard's egress for every Get of every wave; coalescing pays one
  // origin fetch plus the fan-out transfers and then serves repeat waves
  // from the getters' cached copies — strictly fewer bytes on the wire.
  const ObjectID hot = ObjectID::FromName("hot");
  std::int64_t wire_per_get = 0;
  {
    HopliteCluster plain(
        [] {
          HopliteCluster::Options options;
          options.network.num_nodes = 6;
          return options;
        }());
    plain.client(0).Put(hot, store::Buffer::OfSize(KB(32)));
    plain.RunAll();
    const std::int64_t before = WireBytes(plain);
    for (int wave = 0; wave < 2; ++wave) {
      for (const auto& result : ConcurrentGetBurst(plain, hot)) {
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->size(), KB(32));
      }
    }
    wire_per_get = WireBytes(plain) - before;
  }

  HopliteCluster cluster(CoalescingOptions(6));
  cluster.client(0).Put(hot, store::Buffer::OfSize(KB(32)));
  cluster.RunAll();
  const std::int64_t before = WireBytes(cluster);
  for (const auto& result : ConcurrentGetBurst(cluster, hot)) {
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->size(), KB(32));
  }

  const auto& stats = cluster.directory().interest_stats();
  EXPECT_EQ(stats.opened, 1) << "one window for the whole burst";
  EXPECT_EQ(stats.resolved, 1);
  EXPECT_EQ(stats.attaches, 4) << "every later claimant attaches";
  EXPECT_EQ(cluster.directory().pending_interests(), 0u);

  // The fan-out left real copies behind: the repeat burst is all local
  // hits and adds nothing to the wire.
  const std::int64_t settled = WireBytes(cluster);
  for (const auto& result : ConcurrentGetBurst(cluster, hot)) {
    ASSERT_TRUE(result.has_value());
  }
  EXPECT_EQ(WireBytes(cluster), settled) << "repeat Gets must be local hits";
  for (NodeID getter = 1; getter < cluster.num_nodes(); ++getter) {
    EXPECT_GE(cluster.store(getter).hits(), 1u) << "getter " << getter;
  }
  const std::int64_t wire_coalesced = WireBytes(cluster) - before;
  EXPECT_LT(wire_coalesced, wire_per_get)
      << "coalescing must beat per-Get shard egress on the wire";
}

// ----------------------------------------------------------------------
// Delete mid-coalesce: attached waiters fail kDeleted.
// ----------------------------------------------------------------------

TEST(CoalescingTest, DeleteMidCoalesceFailsAttachedWaitersDeleted) {
  // Node 1 wins the (non-inline) claim and is mid-transfer from the
  // producer; nodes 2-4 attached to that in-flight fetch (the fetch-origin
  // partial is not a grantable sender under coalescing). Delete lands mid
  // stream: the attached waiters observed the object exist and merged onto
  // its fetch, so every one of them must fail kDeleted — not hang waiting
  // for a re-creation.
  HopliteCluster cluster(CoalescingOptions(5));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(0).Put(a, store::Buffer::OfSize(MB(12)));
  cluster.RunAll();

  std::vector<std::optional<RefErrorCode>> errors(4);
  int successes = 0;
  for (NodeID getter = 1; getter <= 4; ++getter) {
    cluster.client(getter)
        .Get(a, GetOptions{.read_only = true})
        .Then([&successes] { ++successes; })
        .OnError([&errors, getter](const RefError& e) {
          errors[static_cast<std::size_t>(getter) - 1] = e.code;
        });
  }
  // 12 MB takes ~10 ms; at 1 ms the first chunk stream is live and the
  // attached claims are parked.
  cluster.simulator().ScheduleAfter(Milliseconds(1), [&] {
    EXPECT_EQ(cluster.directory().interest_stats().attaches, 3)
        << "test setup: three claims must have coalesced before the Delete";
    cluster.client(0).Delete(a);
  });
  cluster.RunAll();

  EXPECT_EQ(successes, 0);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    ASSERT_TRUE(errors[i].has_value()) << "getter " << i + 1 << " must settle";
    EXPECT_EQ(*errors[i], RefErrorCode::kDeleted) << "getter " << i + 1;
  }
  EXPECT_FALSE(cluster.directory().HasObject(a));
  for (NodeID n = 0; n < 5; ++n) EXPECT_FALSE(cluster.store(n).Contains(a));
}

TEST(CoalescingTest, DeleteWhileInlinePayloadInFlightReapsTheCachedCopy) {
  // The inline flavour: the window is open, the payload is on the wire to
  // the first claimant, attached waiters are parked — and the object is
  // deleted. The attached waiters fail kDeleted; the first claimant's Get
  // legitimately completes (data already in flight beats the delete) but
  // its just-cached serving copy must be reaped via the registration's
  // deleted notification, not survive as an orphan a re-created id would
  // wrongly hit.
  HopliteCluster cluster(CoalescingOptions(4));
  const ObjectID hot = ObjectID::FromName("hot");
  cluster.client(0).Put(hot, store::Buffer::OfSize(KB(32)));
  cluster.RunAll();

  std::optional<store::Buffer> first;
  std::vector<std::optional<RefErrorCode>> attached_errors(2);
  cluster.client(1).Get(hot, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    first = b;
  });
  for (NodeID getter = 2; getter <= 3; ++getter) {
    cluster.client(getter)
        .Get(hot, GetOptions{.read_only = true})
        .OnError([&attached_errors, getter](const RefError& e) {
          attached_errors[static_cast<std::size_t>(getter) - 2] = e.code;
        });
  }
  // The claims are processed (and the window opens) one directory read
  // latency in (~177 us); the payload lands and its registration resolves
  // the window past ~400 us. Delete in the gap, while the payload is
  // airborne.
  cluster.simulator().ScheduleAfter(Microseconds(300), [&] {
    EXPECT_EQ(cluster.directory().pending_interests(), 1u)
        << "test setup: the Delete must land while the window is open";
    cluster.client(0).Delete(hot);
  });
  cluster.RunAll();

  ASSERT_TRUE(first.has_value()) << "in-flight inline data is delivered before the purge";
  EXPECT_EQ(first->size(), KB(32));
  for (std::size_t i = 0; i < attached_errors.size(); ++i) {
    ASSERT_TRUE(attached_errors[i].has_value()) << "attached getter " << i + 2;
    EXPECT_EQ(*attached_errors[i], RefErrorCode::kDeleted);
  }
  EXPECT_FALSE(cluster.store(1).Contains(hot))
      << "the late-landing cached copy must be reaped, not orphaned";
  EXPECT_FALSE(cluster.directory().HasObject(hot));
  EXPECT_EQ(cluster.directory().pending_interests(), 0u);
}

// ----------------------------------------------------------------------
// Failure mid-fan-out.
// ----------------------------------------------------------------------

TEST(CoalescingTest, DeadInlineFetcherRestartsTheWindowForSurvivors) {
  // Node 1 owns the open window (its inline fetch is the one in flight)
  // and dies before the payload lands. The directory must drop the window
  // (OnNodeFailed) and restart it for the next parked claimant, so the
  // survivors are served from the shard instead of waiting forever on a
  // dead fetcher's supply.
  HopliteCluster cluster(CoalescingOptions(4));
  const ObjectID hot = ObjectID::FromName("hot");
  cluster.client(0).Put(hot, store::Buffer::OfSize(KB(63)));
  cluster.RunAll();

  std::vector<std::optional<store::Buffer>> got(2);
  (void)cluster.client(1).Get(hot, GetOptions{.read_only = true});
  for (NodeID getter = 2; getter <= 3; ++getter) {
    cluster.client(getter)
        .Get(hot, GetOptions{.read_only = true})
        .Then([&got, getter](const store::Buffer& b) {
          got[static_cast<std::size_t>(getter) - 2] = b;
        });
  }
  // Window open at ~177 us (claim read latency), the 63 KB payload lands
  // at node 1 near ~280 us: kill in between, while it is airborne.
  cluster.simulator().ScheduleAfter(Microseconds(220), [&] {
    EXPECT_EQ(cluster.directory().pending_interests(), 1u)
        << "test setup: the fetch must still be in flight when node 1 dies";
    cluster.KillNode(1);
  });
  cluster.RunAll();

  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "surviving getter " << i + 2;
    EXPECT_EQ(got[i]->size(), KB(63));
  }
  const auto& stats = cluster.directory().interest_stats();
  EXPECT_EQ(stats.aborted, 1) << "the dead fetcher's window";
  EXPECT_EQ(stats.opened, 2) << "original window + the survivor restart";
  EXPECT_EQ(stats.resolved, 1);
  EXPECT_EQ(cluster.directory().pending_interests(), 0u);
}

TEST(CoalescingTest, DeadProducerMidFanOutReResolvesViaLineageRePut) {
  // The producer dies while streaming to the first claimant, with three
  // more claims attached to that fetch. Every copy (the producer's primary
  // and the fetch-origin partial that inherited its chain) dies with it,
  // so all four Gets park on the id. The framework's lineage answer — a
  // re-Put of the object on a surviving node — must resolve every one of
  // them.
  HopliteCluster cluster(CoalescingOptions(6));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(0).Put(a, store::Buffer::OfSize(MB(12)));
  cluster.RunAll();

  std::vector<std::optional<store::Buffer>> got(4);
  for (NodeID getter = 1; getter <= 4; ++getter) {
    cluster.client(getter)
        .Get(a, GetOptions{.read_only = true})
        .Then([&got, getter](const store::Buffer& b) {
          got[static_cast<std::size_t>(getter) - 1] = b;
        });
  }
  cluster.simulator().ScheduleAfter(Milliseconds(1), [&] {
    EXPECT_EQ(cluster.directory().interest_stats().attaches, 3)
        << "test setup: the burst must have coalesced before the producer dies";
    cluster.KillNode(0);
  });
  // Lineage kicks in well after the failure is detected and the stale
  // locations are cleaned: node 5 recreates the object.
  cluster.simulator().ScheduleAfter(Milliseconds(20), [&] {
    ASSERT_FALSE(got[0].has_value()) << "test setup: the fan-out must have been cut";
    cluster.client(5).Put(a, store::Buffer::OfSize(MB(12)));
  });
  cluster.RunAll();

  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "getter " << i + 1 << " must re-resolve";
    EXPECT_EQ(got[i]->size(), MB(12));
  }
}

TEST(CoalescingTest, EvictedFanOutSourceIsRetractedAndSurvivorsRetried) {
  // Wave 1 leaves node 1 holding the evictable cached serving copy; store
  // pressure evicts it while its directory location survives (eviction is
  // lazy). Wave 2's first claim is granted the stale location with a
  // second claim attached behind it: the sender-side miss must retract the
  // location, and the re-claim — now against an empty table — must restart
  // the inline window so both waiters land.
  HopliteCluster cluster(CoalescingOptions(4, MB(1)));
  const ObjectID hot = ObjectID::FromName("hot");
  cluster.client(0).Put(hot, store::Buffer::OfSize(KB(32)));
  cluster.RunAll();

  (void)cluster.client(1).Get(hot, GetOptions{.read_only = true});
  cluster.RunAll();
  ASSERT_TRUE(cluster.store(1).Contains(hot)) << "wave 1 must cache the copy";

  // Fill node 1 past capacity with its own primaries' replicas: the cached
  // copy is the only evictable entry and goes first.
  for (int i = 0; i < 2; ++i) {
    const ObjectID filler = ObjectID::FromName("filler").WithIndex(i);
    cluster.client(2).Put(filler, store::Buffer::OfSize(MB(1) / 2));
    (void)cluster.client(1).Get(filler, GetOptions{.read_only = true});
    cluster.RunAll();
  }
  ASSERT_FALSE(cluster.store(1).Contains(hot)) << "the cached copy must be evicted";

  std::vector<std::optional<store::Buffer>> got(2);
  for (NodeID getter = 2; getter <= 3; ++getter) {
    cluster.client(getter)
        .Get(hot, GetOptions{.read_only = true})
        .Then([&got, getter](const store::Buffer& b) {
          got[static_cast<std::size_t>(getter) - 2] = b;
        });
  }
  cluster.RunAll();

  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "getter " << i + 2;
    EXPECT_EQ(got[i]->size(), KB(32));
  }
  EXPECT_EQ(cluster.directory().pending_interests(), 0u);
}

}  // namespace
}  // namespace hoplite::core

// ----------------------------------------------------------------------
// zipf-serving determinism across repeats and engine shard counts.
// ----------------------------------------------------------------------

namespace hoplite::workload {
namespace {

ScenarioSpec SmallZipfSpec(int engine_shards) {
  ScenarioTuning tuning;
  tuning.num_nodes = 8;
  tuning.horizon = Milliseconds(200);
  tuning.seed = 11;
  ScenarioSpec spec = BuildScenario("zipf-serving", tuning);
  spec.store_capacity_bytes = MB(4);
  spec.engine_shards = engine_shards;
  spec.cache.policy = cache::EvictionPolicyKind::kTwoQ;
  spec.cache.coalescing = true;
  return spec;
}

void ExpectSameReport(const LoadReport& one, const LoadReport& two) {
  ASSERT_EQ(one.ops.size(), two.ops.size());
  for (std::size_t i = 0; i < one.ops.size(); ++i) {
    EXPECT_EQ(one.ops[i].settled_at, two.ops[i].settled_at) << "op " << i;
    EXPECT_EQ(one.ops[i].ok, two.ops[i].ok) << "op " << i;
  }
  EXPECT_EQ(one.end_time, two.end_time);
  EXPECT_EQ(one.store.evictions, two.store.evictions);
  EXPECT_EQ(one.store.hits, two.store.hits);
  EXPECT_EQ(one.store.misses, two.store.misses);
  EXPECT_EQ(one.store.coalesced_attaches, two.store.coalesced_attaches);
  EXPECT_EQ(one.store.peak_used_bytes, two.store.peak_used_bytes);
}

TEST(ZipfServingTest, RepeatRunsAreBitIdentical) {
  const ScenarioSpec spec = SmallZipfSpec(/*engine_shards=*/1);
  const LoadReport one = RunScenario(spec, BackendKind::kHoplite);
  const LoadReport two = RunScenario(spec, BackendKind::kHoplite);
  ASSERT_GT(one.total.offered, 0u);
  EXPECT_GT(one.store.hits, 0u) << "the hot set must produce local hits";
  ExpectSameReport(one, two);
}

TEST(ZipfServingTest, ShardedEngineRunIsBitIdenticalToReference) {
  const LoadReport reference = RunScenario(SmallZipfSpec(1), BackendKind::kHoplite);
  const LoadReport sharded = RunScenario(SmallZipfSpec(4), BackendKind::kHoplite);
  ASSERT_GT(reference.total.offered, 0u);
  ExpectSameReport(reference, sharded);
}

}  // namespace
}  // namespace hoplite::workload
