// Unit tests for the discrete-event simulation engine.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace hoplite::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Idle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesEventAtScheduledTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(Milliseconds(5), [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, Milliseconds(5));
  EXPECT_EQ(sim.Now(), Milliseconds(5));
}

TEST(SimulatorTest, ScheduleAfterIsRelativeToNow) {
  Simulator sim;
  SimTime inner_fired_at = -1;
  sim.ScheduleAt(Milliseconds(3), [&] {
    sim.ScheduleAfter(Milliseconds(4), [&] { inner_fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired_at, Milliseconds(7));
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimestampEventsFireInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.ScheduleAt(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  bool inner = false;
  sim.ScheduleAt(Milliseconds(2), [&] {
    sim.ScheduleAfter(0, [&] {
      inner = true;
      EXPECT_EQ(sim.Now(), Milliseconds(2));
    });
  });
  sim.Run();
  EXPECT_TRUE(inner);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(Milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(Milliseconds(1), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId{}));
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(1, [&] { ++count; });
  sim.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(Milliseconds(1), [&] { ++count; });
  sim.ScheduleAt(Milliseconds(5), [&] { ++count; });
  sim.ScheduleAt(Milliseconds(9), [&] { ++count; });
  sim.RunUntil(Milliseconds(5));
  EXPECT_EQ(count, 2);  // events at 1 ms and exactly 5 ms fire
  EXPECT_EQ(sim.Now(), Milliseconds(5));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithEmptyQueue) {
  Simulator sim;
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(Milliseconds(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.Now(), Milliseconds(4));
  // Unsatisfiable predicate drains the queue and reports false.
  EXPECT_FALSE(sim.RunUntilPredicate([&] { return count == 99; }));
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.ScheduleAfter(Microseconds(1), chain);
  };
  sim.ScheduleAfter(0, chain);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), Microseconds(99));
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  // Pseudo-random times; verify monotone execution order.
  std::uint64_t x = 12345;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const SimTime t = static_cast<SimTime>(x % 1'000'000);
    sim.ScheduleAt(t, [&, t] {
      if (sim.Now() < last) monotone = false;
      EXPECT_EQ(sim.Now(), t);
      last = sim.Now();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10'000u);
}

TEST(SimulatorTest, RunUntilDoesNotExecutePastDeadlineOverCancelledHead) {
  Simulator sim;
  const EventId head = sim.ScheduleAt(Milliseconds(5), [] {});
  bool late_fired = false;
  sim.ScheduleAt(Milliseconds(100), [&] { late_fired = true; });
  sim.Cancel(head);  // 1 tombstone of 2 pending: survives the sweep threshold
  sim.RunUntil(Milliseconds(10));
  EXPECT_FALSE(late_fired) << "event beyond the deadline was executed";
  EXPECT_EQ(sim.Now(), Milliseconds(10));
  sim.Run();
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(sim.Now(), Milliseconds(100));
}

TEST(SimulatorTest, CancelSweepsTombstonesWhenTheyExceedHalfTheHeap) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.ScheduleAt(Milliseconds(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  // Cancel every event: once tombstones outnumber half the heap, the sweep
  // reclaims both the heap entries and the tombstone set — an abandoned
  // (never-drained) heap cannot pin them forever.
  for (const EventId id : ids) {
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_tombstones(), 0u);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, CancelAfterFireDoesNotLeakTombstonesForever) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(sim.ScheduleAt(Milliseconds(i), [] {}));
  }
  sim.Run();
  // Stale cancels (the event already fired) must not insert a tombstone no
  // heap pop will ever reclaim — and must report that nothing was cancelled.
  for (const EventId id : ids) {
    EXPECT_FALSE(sim.Cancel(id));
    EXPECT_EQ(sim.cancelled_tombstones(), 0u) << "stale tombstone survived";
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, SweepPreservesExecutionOrderAndPendingAccounting) {
  Simulator sim;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(sim.ScheduleAt(Milliseconds(64 - i), [&fired, i] { fired.push_back(i); }));
  }
  // Cancel the odd-scheduled events; the sweep triggers part-way through.
  for (int i = 1; i < 64; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(sim.pending_events() - sim.cancelled_tombstones(), 32u);
  sim.Run();
  ASSERT_EQ(fired.size(), 32u);
  // Survivors fire strictly by timestamp (i.e., in descending i).
  for (std::size_t k = 1; k < fired.size(); ++k) {
    EXPECT_LT(fired[k], fired[k - 1]);
  }
  EXPECT_EQ(sim.executed_events(), 32u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_tombstones(), 0u);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(Microseconds(1), Nanoseconds(1000));
  EXPECT_EQ(Milliseconds(1), Microseconds(1000));
  EXPECT_EQ(Seconds(1), Milliseconds(1000));
  EXPECT_EQ(SecondsF(0.5), Milliseconds(500));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(9)), 9.0);
  EXPECT_EQ(KB(1), 1024);
  EXPECT_EQ(MB(1), 1024 * 1024);
  EXPECT_EQ(GB(1), 1024LL * 1024 * 1024);
}

TEST(UnitsTest, TransferTime) {
  // 1 GB at 10 Gbps = 1.25 GB/s -> 0.8589934592 s.
  const SimDuration t = TransferTime(GB(1), Gbps(10));
  EXPECT_NEAR(ToSeconds(t), 0.8589934592, 1e-9);
  EXPECT_EQ(TransferTime(0, Gbps(10)), 0);
  EXPECT_EQ(TransferTime(-5, Gbps(10)), 0);
}

}  // namespace
}  // namespace hoplite::sim
