// Unit tests for the per-node object store.
#include "store/local_store.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace hoplite::store {
namespace {

const ObjectID kObj = ObjectID::FromName("x");
const ObjectID kObj2 = ObjectID::FromName("y");

TEST(LocalStoreTest, CreateAdvanceComplete) {
  LocalStore store(0);
  store.CreatePartial(kObj, MB(8), CopyKind::kPrimary, MB(4));
  EXPECT_TRUE(store.Contains(kObj));
  EXPECT_FALSE(store.IsComplete(kObj));
  EXPECT_EQ(store.ChunksReady(kObj), 0);

  store.AdvanceChunks(kObj, 1);
  EXPECT_EQ(store.ChunksReady(kObj), 1);

  store.MarkComplete(kObj, Buffer::OfSize(MB(8)));
  EXPECT_TRUE(store.IsComplete(kObj));
  EXPECT_EQ(store.ChunksReady(kObj), 2);
  EXPECT_EQ(store.PayloadOf(kObj).size(), MB(8));
}

TEST(LocalStoreTest, AdvanceIsMonotone) {
  LocalStore store(0);
  store.CreatePartial(kObj, MB(16), CopyKind::kReplica, MB(4));
  store.AdvanceChunks(kObj, 3);
  store.AdvanceChunks(kObj, 1);  // ignored
  EXPECT_EQ(store.ChunksReady(kObj), 3);
}

TEST(LocalStoreTest, ChunkProgressSubscription) {
  LocalStore store(0);
  store.CreatePartial(kObj, MB(16), CopyKind::kReplica, MB(4));
  std::vector<std::int64_t> seen;
  store.OnChunkProgress(kObj, [&](std::int64_t c) { seen.push_back(c); });
  store.AdvanceChunks(kObj, 2);
  store.AdvanceChunks(kObj, 4);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2, 4}));
}

TEST(LocalStoreTest, ChunkSubscriptionFiresImmediatelyIfProgressExists) {
  LocalStore store(0);
  store.CreatePartial(kObj, MB(16), CopyKind::kReplica, MB(4));
  store.AdvanceChunks(kObj, 2);
  std::vector<std::int64_t> seen;
  store.OnChunkProgress(kObj, [&](std::int64_t c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2}));
}

TEST(LocalStoreTest, CompletionSubscription) {
  LocalStore store(0);
  store.CreatePartial(kObj, 100, CopyKind::kPrimary, MB(4));
  int fired = 0;
  store.OnCompletion(kObj, [&](const Buffer& b) {
    EXPECT_EQ(b.size(), 100);
    ++fired;
  });
  store.MarkComplete(kObj, Buffer::OfSize(100));
  EXPECT_EQ(fired, 1);
  // Subscribing after completion fires immediately.
  store.OnCompletion(kObj, [&](const Buffer&) { ++fired; });
  EXPECT_EQ(fired, 2);
}

TEST(LocalStoreTest, UnsubscribeStopsCallbacks) {
  LocalStore store(0);
  store.CreatePartial(kObj, MB(16), CopyKind::kReplica, MB(4));
  int fired = 0;
  const auto token = store.OnChunkProgress(kObj, [&](std::int64_t) { ++fired; });
  store.Unsubscribe(kObj, token);
  store.AdvanceChunks(kObj, 2);
  EXPECT_EQ(fired, 0);
}

TEST(LocalStoreTest, RemoveDropsEntry) {
  LocalStore store(0);
  store.CreatePartial(kObj, 100, CopyKind::kPrimary, MB(4));
  EXPECT_EQ(store.used_bytes(), 100);
  store.Remove(kObj);
  EXPECT_FALSE(store.Contains(kObj));
  EXPECT_EQ(store.used_bytes(), 0);
  store.Remove(kObj);  // idempotent
}

TEST(LocalStoreTest, LruEvictsOnlyUnpinnedReplicas) {
  LocalStore store(0, /*capacity_bytes=*/MB(10));
  // Primary: never evicted.
  store.CreatePartial(kObj, MB(6), CopyKind::kPrimary, MB(4));
  store.MarkComplete(kObj, Buffer::OfSize(MB(6)));
  // Replica: evictable once complete.
  store.CreatePartial(kObj2, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(kObj2, Buffer::OfSize(MB(6)));
  // Over capacity (12 MB > 10 MB): the replica must have been evicted.
  EXPECT_TRUE(store.Contains(kObj));
  EXPECT_FALSE(store.Contains(kObj2));
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(LocalStoreTest, EvictionSkipsReferencedEntries) {
  LocalStore store(0, MB(10));
  store.CreatePartial(kObj, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(kObj, Buffer::OfSize(MB(6)));
  store.Ref(kObj);
  store.CreatePartial(kObj2, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(kObj2, Buffer::OfSize(MB(6)));
  // kObj is referenced; kObj2 (more recent) must be the victim.
  EXPECT_TRUE(store.Contains(kObj));
  EXPECT_FALSE(store.Contains(kObj2));
  store.Unref(kObj);
}

TEST(LocalStoreTest, EvictionSkipsPartialEntries) {
  LocalStore store(0, MB(10));
  store.CreatePartial(kObj, MB(6), CopyKind::kReplica, MB(4));   // stays partial
  store.CreatePartial(kObj2, MB(6), CopyKind::kReplica, MB(4));  // stays partial
  // Nothing is evictable; the store stays over capacity rather than dropping
  // in-flight data.
  EXPECT_TRUE(store.Contains(kObj));
  EXPECT_TRUE(store.Contains(kObj2));
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(LocalStoreTest, LruOrderRespectsTouch) {
  LocalStore store(0, MB(12));
  const ObjectID a = ObjectID::FromName("a");
  const ObjectID b = ObjectID::FromName("b");
  store.CreatePartial(a, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(a, Buffer::OfSize(MB(6)));
  store.CreatePartial(b, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(b, Buffer::OfSize(MB(6)));
  store.Touch(a);  // now b is least-recently-used
  store.CreatePartial(kObj, MB(6), CopyKind::kReplica, MB(4));
  store.MarkComplete(kObj, Buffer::OfSize(MB(6)));
  EXPECT_TRUE(store.Contains(a));
  EXPECT_FALSE(store.Contains(b));
}

TEST(LocalStoreTest, UnrefAfterRemoveIsSafe) {
  LocalStore store(0);
  store.CreatePartial(kObj, 100, CopyKind::kReplica, MB(4));
  store.Ref(kObj);
  store.Remove(kObj);  // Delete can race with an in-flight send
  store.Unref(kObj);   // must not crash
  EXPECT_FALSE(store.Contains(kObj));
}

TEST(LocalStoreTest, ListObjects) {
  LocalStore store(0);
  store.CreatePartial(kObj, 1, CopyKind::kPrimary, MB(4));
  store.CreatePartial(kObj2, 2, CopyKind::kPrimary, MB(4));
  EXPECT_EQ(store.ListObjects().size(), 2u);
}

TEST(LocalStoreTest, EmptyObjectCompletes) {
  LocalStore store(0);
  store.CreatePartial(kObj, 0, CopyKind::kPrimary, MB(4));
  store.MarkComplete(kObj, Buffer::OfSize(0));
  EXPECT_TRUE(store.IsComplete(kObj));
  EXPECT_EQ(store.ChunksReady(kObj), 1);  // the single empty chunk
}

}  // namespace
}  // namespace hoplite::store
