// Integration tests for Put/Get/Delete and the implicit broadcast protocol
// (§3.1, §3.3, §3.4.1) on a simulated cluster.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"

namespace hoplite::core {
namespace {

HopliteCluster::Options TestOptions(int nodes) {
  HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.nic_bandwidth = Gbps(10);
  options.network.one_way_latency = Microseconds(50);
  options.network.per_message_overhead = Microseconds(5);
  options.network.memcpy_bandwidth = GBps(10);
  options.network.failure_detection_delay = Milliseconds(100);
  return options;
}

std::vector<float> Pattern(std::size_t n, float scale) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = scale * static_cast<float>(i % 97);
  return v;
}

TEST(PutGetTest, LocalPutThenLocalGet) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("x");
  const auto values = Pattern(64 * 1024, 1.0f);  // 256 KB: store path
  bool put_done = false;
  std::optional<store::Buffer> got;
  cluster.client(0).Put(id, store::Buffer::FromValues(values)).Then([&] { put_done = true; });
  cluster.client(0).Get(id).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  EXPECT_TRUE(put_done);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->values(), values);
}

TEST(PutGetTest, RemoteGetTransfersObject) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("x");
  const auto values = Pattern(256 * 1024, 2.0f);  // 1 MB
  std::optional<store::Buffer> got;
  cluster.client(0).Put(id, store::Buffer::FromValues(values));
  cluster.client(1).Get(id).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->values(), values);
  // The receiver now holds a complete replica.
  EXPECT_TRUE(cluster.store(1).IsComplete(id));
  // And the directory knows about both copies.
  const auto locations = cluster.directory().LocationsOf(id);
  EXPECT_EQ(locations, (std::vector<NodeID>{0, 1}));
}

TEST(PutGetTest, GetBeforePutParksAndCompletes) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("x");
  std::optional<store::Buffer> got;
  cluster.client(1).Get(id).Then([&](const store::Buffer& b) { got = b; });
  // Put happens much later; the parked claim must be served then.
  cluster.simulator().ScheduleAt(Milliseconds(50), [&] {
    cluster.client(0).Put(id, store::Buffer::OfSize(MB(1)));
  });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), MB(1));
}

TEST(PutGetTest, SmallObjectUsesInlineFastPath) {
  HopliteCluster cluster(TestOptions(4));
  const ObjectID id = ObjectID::FromName("small");
  const auto values = Pattern(256, 1.0f);  // 1 KB < 64 KB threshold
  std::optional<store::Buffer> got;
  cluster.client(0).Put(id, store::Buffer::FromValues(values));
  cluster.client(3).Get(id).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->values(), values);
  EXPECT_TRUE(cluster.directory().IsInline(id));
  // No store entry anywhere: the payload lives in the directory (§3.2).
  EXPECT_FALSE(cluster.store(0).Contains(id));
  EXPECT_FALSE(cluster.store(3).Contains(id));
}

TEST(PutGetTest, ReadOnlyGetSkipsWorkerCopy) {
  // With read_only, the callback fires as soon as the store copy completes;
  // a mutable Get pays an extra (pipelined) memcpy. Compare completion times.
  const ObjectID id = ObjectID::FromName("x");
  SimTime t_ro = 0;
  SimTime t_rw = 0;
  for (const bool read_only : {true, false}) {
    HopliteCluster cluster(TestOptions(2));
    SimTime done = 0;
    cluster.client(0).Put(id, store::Buffer::OfSize(MB(64)));
    cluster.client(1)
        .Get(id, GetOptions{.read_only = read_only})
        .Then([&](const store::Buffer&) { done = cluster.Now(); });
    cluster.RunAll();
    (read_only ? t_ro : t_rw) = done;
  }
  EXPECT_GT(t_ro, 0);
  EXPECT_GT(t_rw, t_ro);
  // Pipelined worker copy should cost roughly one chunk of memcpy, far less
  // than a full (64 MB / 10 GBps = 6.7 ms) blocking copy.
  EXPECT_LT(t_rw - t_ro, Milliseconds(2));
}

TEST(PutGetTest, PipeliningBeatsSequentialTransfers) {
  // End-to-end remote Get of a large object with chunk pipelining should be
  // close to the pure serialization bound, not 3x it (put-copy + network +
  // get-copy run overlapped, §3.3).
  const ObjectID id = ObjectID::FromName("big");
  auto run = [&](bool pipelined) {
    auto options = TestOptions(2);
    options.hoplite.pipeline_worker_copies = pipelined;
    HopliteCluster cluster(options);
    SimTime done = 0;
    cluster.client(0).Put(id, store::Buffer::OfSize(GB(1)));
    cluster.client(1).Get(id).Then([&](const store::Buffer&) { done = cluster.Now(); });
    cluster.RunAll();
    return done;
  };
  const SimTime pipelined = run(true);
  const SimTime sequential = run(false);
  const double network_bound = ToSeconds(TransferTime(GB(1), Gbps(10)));
  EXPECT_LT(ToSeconds(pipelined), network_bound * 1.15);
  EXPECT_GT(ToSeconds(sequential),
            network_bound + 2 * ToSeconds(TransferTime(GB(1), GBps(10))) * 0.9);
}

TEST(PutGetTest, ConcurrentGettersOfSameObjectShareOneFetch) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("x");
  int arrived = 0;
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(8)));
  cluster.client(1).Get(id).Then([&](const store::Buffer&) { ++arrived; });
  cluster.client(1).Get(id).Then([&](const store::Buffer&) { ++arrived; });
  cluster.RunAll();
  EXPECT_EQ(arrived, 2);
  // Only one network copy was made.
  EXPECT_EQ(cluster.network().TrafficOf(1).bytes_received,
            MB(8) + cluster.network().TrafficOf(1).bytes_received - MB(8));
  EXPECT_LE(cluster.network().TrafficOf(0).bytes_sent, MB(8) + KB(64));
}

TEST(BroadcastTest, ManyReceiversFormDistributionTree) {
  // 8 receivers Get the same 64 MB object. With the claim protocol each
  // sender serves one receiver at a time, so the sender's egress traffic
  // stays ~1 object, not 7.
  HopliteCluster cluster(TestOptions(8));
  const ObjectID id = ObjectID::FromName("model");
  int arrived = 0;
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(64)));
  for (NodeID r = 1; r < 8; ++r) {
    cluster.client(r).Get(id).Then([&](const store::Buffer&) { ++arrived; });
  }
  cluster.RunAll();
  EXPECT_EQ(arrived, 7);
  // Sender bandwidth bound: at most ~2 copies left node 0 (tree fan-out).
  EXPECT_LE(cluster.network().TrafficOf(0).bytes_sent, 3 * MB(64));
  // Everyone ended complete and registered.
  for (NodeID r = 1; r < 8; ++r) {
    EXPECT_TRUE(cluster.store(r).IsComplete(id)) << "receiver " << r;
  }
  EXPECT_EQ(cluster.directory().LocationsOf(id).size(), 8u);
}

TEST(BroadcastTest, TreeBroadcastBeatsSenderSerialization) {
  // Latency of the slowest of 15 receivers should be far below 15 sequential
  // sends from the origin (what Ray does), because receivers re-serve.
  HopliteCluster cluster(TestOptions(16));
  const ObjectID id = ObjectID::FromName("model");
  const std::int64_t size = MB(256);
  int arrived = 0;
  SimTime last = 0;
  cluster.client(0).Put(id, store::Buffer::OfSize(size));
  for (NodeID r = 1; r < 16; ++r) {
    cluster.client(r).Get(id).Then([&](const store::Buffer&) {
      ++arrived;
      last = cluster.Now();
    });
  }
  cluster.RunAll();
  EXPECT_EQ(arrived, 15);
  const double serialized = 15.0 * ToSeconds(TransferTime(size, Gbps(10)));
  EXPECT_LT(ToSeconds(last), serialized / 2.5);
}

TEST(BroadcastTest, LateReceiverFetchesFromAnyCompleteCopy) {
  HopliteCluster cluster(TestOptions(4));
  const ObjectID id = ObjectID::FromName("x");
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(8)));
  int early = 0;
  cluster.client(1).Get(id).Then([&](const store::Buffer&) { ++early; });
  cluster.RunAll();
  // Much later, a new receiver arrives; both 0 and 1 hold complete copies.
  int late = 0;
  cluster.client(2).Get(id).Then([&](const store::Buffer&) { ++late; });
  cluster.RunAll();
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 1);
}

TEST(DeleteTest, DeleteRemovesAllCopies) {
  HopliteCluster cluster(TestOptions(3));
  const ObjectID id = ObjectID::FromName("x");
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(4)));
  cluster.client(1).Get(id).Then([](const store::Buffer&) {});
  cluster.client(2).Get(id).Then([](const store::Buffer&) {});
  cluster.RunAll();
  EXPECT_TRUE(cluster.store(1).Contains(id));
  bool deleted = false;
  cluster.client(0).Delete(id).Then([&] { deleted = true; });
  cluster.RunAll();
  EXPECT_TRUE(deleted);
  EXPECT_FALSE(cluster.store(0).Contains(id));
  EXPECT_FALSE(cluster.store(1).Contains(id));
  EXPECT_FALSE(cluster.store(2).Contains(id));
  EXPECT_FALSE(cluster.directory().HasObject(id));
}

TEST(DeleteTest, DeleteInlineObject) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("tiny");
  cluster.client(0).Put(id, store::Buffer::OfSize(KB(1)));
  cluster.RunAll();
  EXPECT_TRUE(cluster.directory().IsInline(id));
  cluster.client(0).Delete(id);
  cluster.RunAll();
  EXPECT_FALSE(cluster.directory().HasObject(id));
}

TEST(PutGetTest, EmptyObjectRoundTrip) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("empty");
  std::optional<store::Buffer> got;
  cluster.client(0).Put(id, store::Buffer::OfSize(0));
  cluster.client(1).Get(id).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 0);
}

TEST(PutGetTest, ManyDistinctObjectsInParallel) {
  HopliteCluster cluster(TestOptions(4));
  constexpr int kObjects = 32;
  int arrived = 0;
  for (int i = 0; i < kObjects; ++i) {
    const ObjectID id = ObjectID::FromName("obj").WithIndex(i);
    const NodeID src = static_cast<NodeID>(i % 4);
    const NodeID dst = static_cast<NodeID>((i + 1) % 4);
    cluster.client(src).Put(id, store::Buffer::OfSize(MB(1)));
    cluster.client(dst).Get(id).Then([&](const store::Buffer&) { ++arrived; });
  }
  cluster.RunAll();
  EXPECT_EQ(arrived, kObjects);
}

}  // namespace
}  // namespace hoplite::core
