// Smoke coverage for the benchmark registry: every registered figure runner
// executes at a tiny scale (<= 4 nodes, <= 1 MB objects) and must produce
// non-empty, finite rows — so bench code is exercised by CTest, not just
// hand-runs.
#include "bench/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/units.h"

namespace hoplite::bench {
namespace {

RunOptions SmokeScale() {
  RunOptions options;
  options.max_nodes = 4;
  options.max_object_bytes = MB(1);
  options.repeats = 1;
  options.rounds = 2;
  return options;
}

TEST(BenchRegistryTest, AllTwentyTwoFiguresRegistered) {
  const std::set<std::string> expected{
      "fig6",  "fig7",  "fig8",  "fig9",       "fig10",
      "fig11", "fig12", "fig13", "fig14",      "fig15",
      "adaptive-d", "directory-latency", "engine-micro",
      "topo_oversubscription", "scale_nodes", "scale_shards",
      "pipeline_dag", "load_sweep", "mem_pressure",
      "hot_object", "cache_policy", "fairness"};
  std::set<std::string> registered;
  for (const Figure& figure : Registry::Instance().figures()) {
    EXPECT_NE(figure.fn, nullptr) << figure.name;
    EXPECT_FALSE(figure.title.empty()) << figure.name;
    registered.insert(figure.name);
  }
  EXPECT_EQ(registered, expected);
}

TEST(BenchRegistryTest, FindIsExactAndMissesUnknown) {
  ASSERT_NE(Registry::Instance().Find("fig7"), nullptr);
  EXPECT_EQ(Registry::Instance().Find("fig7")->name, "fig7");
  EXPECT_EQ(Registry::Instance().Find("fig99"), nullptr);
  EXPECT_EQ(Registry::Instance().Find(""), nullptr);
}

TEST(BenchSmokeTest, EveryFigureProducesFiniteRowsAtTinyScale) {
  const RunOptions opt = SmokeScale();
  EXPECT_EQ(Registry::Instance().figures().size(), 22u);
  for (const Figure& figure : Registry::Instance().figures()) {
    SCOPED_TRACE(figure.name);
    const std::vector<Row> rows = figure.fn(opt);
    ASSERT_FALSE(rows.empty());
    for (const Row& row : rows) {
      SCOPED_TRACE(row.series);
      EXPECT_FALSE(row.series.empty());
      EXPECT_FALSE(row.unit.empty());
      EXPECT_TRUE(std::isfinite(row.value));
      for (const auto& [name, value] : row.coords) {
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(std::isfinite(value)) << name;
      }
      for (const auto& [name, value] : row.labels) {
        EXPECT_FALSE(name.empty());
        EXPECT_FALSE(value.empty()) << name;
      }
    }
  }
}

// The adaptive-degree bench is this repo's regression gate for Eq. (1): at
// paper scale every cell must land within 10% of the best forced degree
// (the pre-registry binary enforced this via its exit code). The sweep is
// event-level cheap (<1 s), so the gate runs at full scale here.
TEST(BenchSmokeTest, AdaptiveDegreeStaysWithinTenPercentOfBestAtPaperScale) {
  const Figure* figure = Registry::Instance().Find("adaptive-d");
  ASSERT_NE(figure, nullptr);
  const std::vector<Row> rows = figure->fn(RunOptions{});
  ASSERT_FALSE(rows.empty());
  const Row& summary = rows.back();
  ASSERT_EQ(summary.series, "cells-within-10pct");
  ASSERT_EQ(summary.coords.size(), 1u);
  EXPECT_EQ(summary.coords[0].first, "cells");
  EXPECT_GT(summary.coords[0].second, 0.0);
  EXPECT_EQ(summary.value, summary.coords[0].second)
      << "adaptive reduce degree fell outside 10% of the best forced degree";
}

// The topology figure is this repo's gate for the rack fabric: across the
// 1:1 -> 8:1 oversubscription sweep, Hoplite's tree collectives must beat
// the Ray-like point-to-point baseline at every cell and degrade gracefully
// (monotonically, and by less than the 8x bandwidth cut) rather than
// collapse. Event-level cheap (<0.1 s), so the gate runs at paper scale.
TEST(BenchSmokeTest, TopoOversubscriptionHopliteBeatsRayAndDegradesGracefully) {
  const Figure* figure = Registry::Instance().Find("topo_oversubscription");
  ASSERT_NE(figure, nullptr);
  const std::vector<Row> rows = figure->fn(RunOptions{});
  ASSERT_FALSE(rows.empty());

  const auto value_of = [&rows](const std::string& series, const std::string& op,
                                double oversub) {
    for (const Row& row : rows) {
      if (row.series != series) continue;
      if (row.labels.empty() || row.labels[0] != std::make_pair(std::string("op"), op)) {
        continue;
      }
      if (row.coords.empty() || row.coords[0].second != oversub) continue;
      return row.value;
    }
    ADD_FAILURE() << "missing row: " << series << " " << op << " " << oversub;
    return 0.0;
  };

  for (const std::string op : {"broadcast", "reduce", "allreduce"}) {
    double previous = 0;
    for (const double oversub : {1.0, 2.0, 4.0, 8.0}) {
      const double hoplite = value_of("Hoplite", op, oversub);
      const double ray = value_of("Ray", op, oversub);
      EXPECT_LT(hoplite, ray) << op << " at " << oversub << ":1";
      EXPECT_GE(hoplite, previous) << op << " sped up under congestion at " << oversub;
      previous = hoplite;
    }
    const double flat = value_of("Hoplite", op, 1.0);
    const double congested = value_of("Hoplite", op, 8.0);
    EXPECT_GT(congested, flat) << op << " ignored the oversubscribed uplink";
    EXPECT_LT(congested, 8 * flat) << op << " collapsed instead of degrading";
  }
}

// The pipeline figure is this repo's gate for the Ref combinator DAG: at
// paper scale Hoplite's pipelined activations must beat the Ray-like
// baseline at every cell, and adding microbatches at fixed size must not
// shrink the end-to-end time (the pipeline only gets longer). Event-level
// cheap, so the gate runs at paper scale.
TEST(BenchSmokeTest, PipelineDagHopliteBeatsRayAndScalesWithMicrobatches) {
  const Figure* figure = Registry::Instance().Find("pipeline_dag");
  ASSERT_NE(figure, nullptr);
  const std::vector<Row> rows = figure->fn(RunOptions{});
  ASSERT_FALSE(rows.empty());

  const auto value_of = [&rows](const std::string& series, double bytes, double micro) {
    for (const Row& row : rows) {
      if (row.series != series || row.coords.size() != 2) continue;
      if (row.coords[0].second != bytes || row.coords[1].second != micro) continue;
      return row.value;
    }
    ADD_FAILURE() << "missing row: " << series << " " << bytes << " " << micro;
    return 0.0;
  };

  for (const double bytes : {double(MB(4)), double(MB(16)), double(MB(64))}) {
    double previous = 0;
    for (const double micro : {4.0, 8.0, 16.0}) {
      const double hoplite = value_of("Hoplite", bytes, micro);
      const double ray = value_of("Ray", bytes, micro);
      const double dask = value_of("Dask", bytes, micro);
      EXPECT_LT(hoplite, ray) << bytes << " bytes, " << micro << " microbatches";
      EXPECT_LT(ray, dask) << bytes << " bytes, " << micro << " microbatches";
      EXPECT_GT(hoplite, previous) << "pipeline shrank with more microbatches";
      previous = hoplite;
    }
  }
}

TEST(BenchSmokeTest, JsonSerializationIsWellFormed) {
  const RunOptions opt = SmokeScale();
  const Figure* fig6 = Registry::Instance().Find("fig6");
  ASSERT_NE(fig6, nullptr);
  const FigureResult result{fig6->name, fig6->title, fig6->fn(opt)};
  const std::string json = ResultsToJson({result}, opt);

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"schema\":\"hoplite-bench/1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fig6\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"Hoplite\""), std::string::npos);
  // Balanced braces/brackets outside of strings (no string here contains
  // them, so a raw count suffices) and no NaN/Inf leaking into the document.
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(BenchRunOptionsTest, ClampHelpers) {
  RunOptions opt;  // paper scale: everything passes through
  EXPECT_EQ(opt.Nodes(16), 16);
  EXPECT_EQ(opt.Bytes(GB(1)), GB(1));
  EXPECT_EQ(opt.NodeCounts({4, 8, 16}), (std::vector<int>{4, 8, 16}));
  EXPECT_EQ(opt.Repeats(3), 3);
  EXPECT_EQ(opt.Rounds(10), 10);

  const RunOptions smoke = SmokeScale();
  EXPECT_EQ(smoke.Nodes(16), 4);
  EXPECT_EQ(smoke.Nodes(1), 2);  // clusters need a sender and a peer
  EXPECT_EQ(smoke.Bytes(GB(1)), MB(1));
  EXPECT_EQ(smoke.NodeCounts({4, 8, 16}), (std::vector<int>{4}));
  EXPECT_EQ(smoke.NodeCounts({8, 16}), (std::vector<int>{4}));  // fallback
  EXPECT_EQ(smoke.ObjectSizes({KB(1), GB(1)}), (std::vector<std::int64_t>{KB(1)}));
  EXPECT_EQ(smoke.ObjectSizes({GB(1)}), (std::vector<std::int64_t>{MB(1)}));  // fallback
  EXPECT_EQ(smoke.Repeats(3), 1);
  EXPECT_EQ(smoke.Rounds(10), 2);
}

// The load-sweep figure is this repo's gate for the workload engine: at
// every matched-offered-load cell Hoplite's tail must beat the Ray-like
// point-to-point baseline's, and the rows must be internally consistent.
// The open-loop sweep is event-level cheap (<0.1 s at paper scale), so the
// gate runs at full scale here.
TEST(BenchSmokeTest, LoadSweepHopliteTailBeatsRayAtEveryMatchedLoad) {
  const Figure* figure = Registry::Instance().Find("load_sweep");
  ASSERT_NE(figure, nullptr);
  const std::vector<Row> rows = figure->fn(RunOptions{});
  ASSERT_FALSE(rows.empty());

  const auto metric_of = [](const Row& row) { return row.labels.at(1).second; };
  int cells = 0;
  for (const Row& row : rows) {
    if (row.series != "Hoplite" || metric_of(row) != "p99") continue;
    // Find Ray's p99 at the same (fabric, load, tenants) cell.
    for (const Row& other : rows) {
      if (other.series != "Ray" || metric_of(other) != "p99") continue;
      if (other.labels != row.labels || other.coords != row.coords) continue;
      EXPECT_LE(row.value, other.value)
          << "Hoplite p99 must not exceed Ray's at matched load ("
          << row.labels.at(0).second << ", load " << row.coords.at(0).second << ")";
      ++cells;
    }
  }
  EXPECT_EQ(cells, 12) << "3 loads x 2 tenant counts x 2 fabrics";
}

// The memory-pressure figure must actually reach the eviction regime at
// its tightest capacities — and the stale-location retry path must keep
// every op completing despite the churn.
TEST(BenchSmokeTest, MemPressureReachesEvictionAndStillCompletesEverything) {
  const Figure* figure = Registry::Instance().Find("mem_pressure");
  ASSERT_NE(figure, nullptr);
  const std::vector<Row> rows = figure->fn(RunOptions{});
  ASSERT_FALSE(rows.empty());

  double tightest = std::numeric_limits<double>::infinity();
  for (const Row& row : rows) {
    const double capacity = row.coords.at(0).second;
    if (capacity > 0) tightest = std::min(tightest, capacity);
  }
  for (const Row& row : rows) {
    const std::string& metric = row.labels.at(0).second;
    const double capacity = row.coords.at(0).second;
    if (metric == "evictions" && capacity == tightest) {
      EXPECT_GT(row.value, 0.0) << "the tightest store must evict";
    }
    if (metric == "completed_fraction") {
      EXPECT_EQ(row.value, 1.0)
          << "retry paths must keep every op completing at capacity " << capacity;
    }
  }
}

// The fairness figure is this repo's gate for the QoS subsystem: at the
// highest aggressor intensity the Jain index over per-tenant completion
// shares must strictly improve with every layer an operator stacks on
// (none -> wfq -> wfq+aqm -> wfq+aqm+adm), and the full stack must hold
// the worst victim p99 within 2x of the aggressor-free baseline. Runs at
// the reduced deterministic scale (8 nodes, 100 ms horizon) the CI bench
// sweep uses, so the asserted cells are the shipped artifact's cells.
TEST(BenchSmokeTest, FairnessJainImprovesPerMechanismAndVictimTailIsBounded) {
  const Figure* figure = Registry::Instance().Find("fairness");
  ASSERT_NE(figure, nullptr);
  RunOptions opt;
  opt.max_nodes = 8;
  opt.max_object_bytes = MB(4);
  opt.repeats = 1;
  opt.rounds = 2;
  const std::vector<Row> rows = figure->fn(opt);
  ASSERT_FALSE(rows.empty());

  const auto value_of = [&rows](const std::string& series, const std::string& metric,
                                double intensity) {
    for (const Row& row : rows) {
      if (row.series != series) continue;
      if (row.labels.empty() ||
          row.labels[0] != std::make_pair(std::string("metric"), metric)) {
        continue;
      }
      if (row.coords.empty() || row.coords[0].second != intensity) continue;
      return row.value;
    }
    ADD_FAILURE() << "missing row: " << series << " " << metric << " " << intensity;
    return 0.0;
  };

  const double kTop = 4.0;  // the highest aggressor intensity swept
  double previous = 0.0;
  for (const std::string mech : {"none", "wfq", "wfq+aqm", "wfq+aqm+adm"}) {
    const double jain = value_of(mech, "jain", kTop);
    EXPECT_GT(jain, previous)
        << mech << " failed to strictly improve Jain at intensity " << kTop;
    previous = jain;
  }

  const double baseline_p99 = value_of("baseline", "victim_p99", 0.0);
  const double full_stack_p99 = value_of("wfq+aqm+adm", "victim_p99", kTop);
  ASSERT_GT(baseline_p99, 0.0);
  EXPECT_LE(full_stack_p99, 2.0 * baseline_p99)
      << "full QoS stack left the victim tail more than 2x the aggressor-free "
         "baseline";

  // Admission must tame the aggressor, not execute it: even fully stacked,
  // the aggressor still completes a useful fraction of its offered load.
  EXPECT_GT(value_of("wfq+aqm+adm", "aggressor_share", kTop), 0.25);
}

}  // namespace
}  // namespace hoplite::bench
