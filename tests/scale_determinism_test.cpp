// Determinism at scale: the incremental fair-share bookkeeping in
// RackFabric (dirty-link components, lazy progress, heap-scheduled
// completions) must preserve bit-reproducibility — the property the whole
// simulator is built on. Two identical 256-node runs must execute the same
// number of events and produce bit-identical completion times.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "net/fabric.h"

namespace hoplite::bench {
namespace {

struct RunResult {
  double broadcast_s = 0;
  double reduce_s = 0;
  double allreduce_s = 0;
  std::uint64_t executed_events = 0;
  std::int64_t node0_bytes_sent = 0;
};

RunResult RunCollectives(int nodes) {
  core::HopliteCluster::Options options = PaperCluster(nodes);
  options.network.fabric.topology = net::TopologyKind::kRack;
  options.network.fabric.num_racks = nodes / 32;
  options.network.fabric.oversubscription = 4.0;

  RunResult result;
  {
    core::HopliteCluster cluster(options);
    const auto ready = std::vector<SimTime>(static_cast<std::size_t>(nodes), 0);
    result.broadcast_s = HopliteBroadcast(cluster, MB(8), ready);
    result.executed_events += cluster.simulator().executed_events();
    result.node0_bytes_sent += cluster.network().TrafficOf(0).bytes_sent;
  }
  {
    core::HopliteCluster cluster(options);
    const auto ready = Staggered(nodes, Microseconds(5));
    result.reduce_s = HopliteReduce(cluster, MB(8), ready);
    result.executed_events += cluster.simulator().executed_events();
    result.node0_bytes_sent += cluster.network().TrafficOf(0).bytes_sent;
  }
  {
    core::HopliteCluster cluster(options);
    const auto ready = std::vector<SimTime>(static_cast<std::size_t>(nodes), 0);
    result.allreduce_s = HopliteAllreduce(cluster, MB(8), ready);
    result.executed_events += cluster.simulator().executed_events();
    result.node0_bytes_sent += cluster.network().TrafficOf(0).bytes_sent;
  }
  return result;
}

TEST(ScaleDeterminismTest, RackFabricCollectivesAreBitReproducibleAt256Nodes) {
  const RunResult a = RunCollectives(256);
  const RunResult b = RunCollectives(256);
  // Bit-identical timing (EXPECT_EQ on doubles is exact equality) and
  // identical event counts: the incremental rewrite may not introduce any
  // hash-order, heap-order or floating-point nondeterminism.
  EXPECT_EQ(a.broadcast_s, b.broadcast_s);
  EXPECT_EQ(a.reduce_s, b.reduce_s);
  EXPECT_EQ(a.allreduce_s, b.allreduce_s);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.node0_bytes_sent, b.node0_bytes_sent);
  // And the runs actually did scale-sized work.
  EXPECT_GT(a.broadcast_s, 0.0);
  EXPECT_GT(a.reduce_s, 0.0);
  EXPECT_GT(a.allreduce_s, 0.0);
  EXPECT_GT(a.executed_events, 10'000u);
}

}  // namespace
}  // namespace hoplite::bench
