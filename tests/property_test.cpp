// Property-based sweeps over the core protocol invariants, driven by seeds
// (parameterized gtest). Each property runs against randomized arrival
// orders, tree degrees, subset sizes and failure schedules:
//
//   P1  Reduce computes exactly the sum of the objects in its final tree,
//       for every arrival permutation and degree.
//   P2  Under a random mid-reduce failure, the failed node's contribution
//       never leaks into the result, exactly num_objects objects are
//       reduced, and the values match the reported reduced set.
//   P3  Broadcast delivers the correct payload to every surviving receiver
//       no matter which receiver is killed mid-transfer.
//   P4  Allreduce delivers the identical correct value to every node for
//       every (nodes, size) cell.
//   P5  The same seed reproduces the identical simulation trace.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"

namespace hoplite::core {
namespace {

core::HopliteCluster::Options Opts(int nodes, int degree = 0) {
  core::HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.failure_detection_delay = Milliseconds(100);
  options.hoplite.forced_reduce_degree = degree;
  return options;
}

ObjectID Grad(NodeID node) { return ObjectID::FromName("pgrad").WithIndex(node); }

float ValueOf(NodeID node) { return static_cast<float>(node) + 1; }

float SumOfReduced(const std::vector<ObjectID>& reduced, int nodes) {
  float sum = 0;
  for (const ObjectID& id : reduced) {
    for (NodeID n = 0; n < nodes; ++n) {
      if (id == Grad(n)) sum += ValueOf(n);
    }
  }
  return sum;
}

// ---------------------------------------------------------------------
// P1: arbitrary arrival permutation x degree -> correct full sum.
// ---------------------------------------------------------------------

class ReducePermutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReducePermutationProperty, SumCorrectUnderAnyArrivalOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int nodes = static_cast<int>(rng.NextInRange(3, 12));
  const int degree_pick = static_cast<int>(rng.NextInRange(0, 2));
  const int degree = degree_pick == 0 ? 1 : (degree_pick == 1 ? 2 : nodes);
  HopliteCluster cluster(Opts(nodes, degree));
  constexpr std::size_t kElems = 128 * 1024;  // 512 KB: store path

  std::vector<SimDuration> arrival;
  for (int i = 0; i < nodes; ++i) arrival.push_back(Milliseconds(rng.NextInRange(0, 200)));
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < nodes; ++n) {
    sources.push_back(Grad(n));
    cluster.simulator().ScheduleAt(arrival[static_cast<std::size_t>(n)], [&, n] {
      cluster.client(n).Put(Grad(n), store::Buffer::FromValues(
                                         std::vector<float>(kElems, ValueOf(n))));
    });
  }
  const NodeID caller =
      static_cast<NodeID>(rng.NextBounded(static_cast<std::uint64_t>(nodes)));
  const ObjectID target = ObjectID::FromName("psum");
  std::optional<store::Buffer> value;
  cluster.client(caller).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  cluster.client(caller).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value()) << "nodes=" << nodes << " d=" << degree;
  const float expected = static_cast<float>(nodes) * (nodes + 1) / 2.0f;
  EXPECT_EQ(value->values().front(), expected) << "nodes=" << nodes << " d=" << degree;
  EXPECT_EQ(value->values().back(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducePermutationProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------
// P2: random mid-reduce failure -> exactly-once, no dead contributions.
// ---------------------------------------------------------------------

class ReduceFailureProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReduceFailureProperty, FailedContributionNeverLeaks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  const int nodes = static_cast<int>(rng.NextInRange(6, 14));
  const int reduce_count = nodes - 3;  // leave spares for replacement
  const int degree = rng.NextBounded(2) == 0 ? 1 : 2;
  HopliteCluster cluster(Opts(nodes, degree));
  constexpr std::size_t kElems = 512 * 1024;  // 2 MB

  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < nodes; ++n) {
    sources.push_back(Grad(n));
    const SimDuration at = Milliseconds(rng.NextInRange(0, 100));
    cluster.simulator().ScheduleAt(at, [&, n] {
      cluster.client(n).Put(Grad(n), store::Buffer::FromValues(
                                         std::vector<float>(kElems, ValueOf(n))));
    });
  }
  // Kill a random non-caller node somewhere inside the reduce window.
  const NodeID victim = static_cast<NodeID>(rng.NextInRange(1, nodes - 1));
  const SimDuration kill_at = Milliseconds(rng.NextInRange(20, 180));
  cluster.simulator().ScheduleAt(kill_at, [&] {
    if (cluster.IsAlive(victim)) cluster.KillNode(victim);
  });

  const ObjectID target = ObjectID::FromName("psum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(
      ReduceSpec{target, sources, static_cast<std::size_t>(reduce_count),
                 store::ReduceOp::kSum}).Then([&](const ReduceResult& r) { result = r; });
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();

  ASSERT_TRUE(result.has_value())
      << "nodes=" << nodes << " victim=" << victim << " kill=" << ToSeconds(kill_at);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(result->reduced.size(), static_cast<std::size_t>(reduce_count));
  // Exactly-once: the value equals the sum over the reported reduced set.
  EXPECT_EQ(value->values().front(), SumOfReduced(result->reduced, nodes));
  EXPECT_EQ(value->values().back(), SumOfReduced(result->reduced, nodes));
  // The victim's object never leaks if the victim died before contributing
  // fully; if it IS in the set, the sum above already validates it.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceFailureProperty, ::testing::Range(1, 17));

// ---------------------------------------------------------------------
// P3: broadcast under a random receiver failure.
// ---------------------------------------------------------------------

class BroadcastFailureProperty : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastFailureProperty, SurvivorsAllReceiveCorrectPayload) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const int nodes = static_cast<int>(rng.NextInRange(4, 12));
  HopliteCluster cluster(Opts(nodes));
  constexpr std::size_t kElems = 2 * 1024 * 1024;  // 8 MB

  const ObjectID object = ObjectID::FromName("bcast");
  const std::vector<float> payload(kElems, 42.5f);
  cluster.client(0).Put(object, store::Buffer::FromValues(payload));

  std::vector<bool> received(static_cast<std::size_t>(nodes), false);
  for (NodeID r = 1; r < nodes; ++r) {
    cluster.client(r)
        .Get(object, GetOptions{.read_only = true})
        .Then([&, r](const store::Buffer& b) {
          EXPECT_EQ(b.values().front(), 42.5f);
          EXPECT_EQ(b.size(), static_cast<std::int64_t>(kElems * 4));
          received[static_cast<std::size_t>(r)] = true;
        });
  }
  // Kill one random receiver (never the origin) mid-broadcast; it may be an
  // intermediate sender in the distribution tree.
  const NodeID victim = static_cast<NodeID>(rng.NextInRange(1, nodes - 1));
  const SimDuration kill_at = Milliseconds(rng.NextInRange(1, 12));
  cluster.simulator().ScheduleAt(kill_at, [&] { cluster.KillNode(victim); });
  cluster.RunAll();

  for (NodeID r = 1; r < nodes; ++r) {
    if (r == victim) continue;
    EXPECT_TRUE(received[static_cast<std::size_t>(r)])
        << "receiver " << r << " starved after victim " << victim << " died at "
        << ToMilliseconds(kill_at) << " ms (nodes=" << nodes << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastFailureProperty, ::testing::Range(1, 17));

// ---------------------------------------------------------------------
// P4: allreduce correctness grid (nodes x size).
// ---------------------------------------------------------------------

using AllreduceCell = std::tuple<int, std::int64_t>;

class AllreduceGridProperty : public ::testing::TestWithParam<AllreduceCell> {};

TEST_P(AllreduceGridProperty, EveryNodeGetsTheSameCorrectSum) {
  const auto [nodes, elems] = GetParam();
  HopliteCluster cluster(Opts(nodes));
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < nodes; ++n) {
    sources.push_back(Grad(n));
    cluster.client(n).Put(
        Grad(n), store::Buffer::FromValues(
                     std::vector<float>(static_cast<std::size_t>(elems), ValueOf(n))));
  }
  const ObjectID target = ObjectID::FromName("psum");
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  const float expected = static_cast<float>(nodes) * (nodes + 1) / 2.0f;
  int got = 0;
  for (NodeID n = 0; n < nodes; ++n) {
    cluster.client(n)
        .Get(target, GetOptions{.read_only = true})
        .Then([&, n](const store::Buffer& b) {
          EXPECT_EQ(b.values().front(), expected) << "node " << n;
          ++got;
        });
  }
  cluster.RunAll();
  EXPECT_EQ(got, nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllreduceGridProperty,
    ::testing::Combine(::testing::Values(2, 5, 8, 16),
                       ::testing::Values<std::int64_t>(64 * 1024, 1024 * 1024)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_e" +
             std::to_string(std::get<1>(info.param) / 1024) + "k";
    });

// ---------------------------------------------------------------------
// P5: determinism — the same seed reproduces the identical trace.
// ---------------------------------------------------------------------

struct TraceFingerprint {
  std::uint64_t events = 0;
  SimTime end_time = 0;
  float sum = 0;

  bool operator==(const TraceFingerprint& other) const {
    return events == other.events && end_time == other.end_time && sum == other.sum;
  }
};

TraceFingerprint RunDeterministicWorkload(std::uint64_t seed) {
  Rng rng(seed);
  const int nodes = 8;
  HopliteCluster cluster(Opts(nodes, 2));
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < nodes; ++n) {
    sources.push_back(Grad(n));
    const SimDuration at = Milliseconds(rng.NextInRange(0, 50));
    cluster.simulator().ScheduleAt(at, [&, n] {
      cluster.client(n).Put(Grad(n), store::Buffer::FromValues(
                                         std::vector<float>(65536, ValueOf(n))));
    });
  }
  TraceFingerprint fp;
  const ObjectID target = ObjectID::FromName("psum");
  cluster.client(0).Reduce(ReduceSpec{target, sources, 5, store::ReduceOp::kSum});
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { fp.sum = b.values()[0]; });
  cluster.RunAll();
  fp.events = cluster.simulator().executed_events();
  fp.end_time = cluster.Now();
  return fp;
}

TEST(DeterminismProperty, SameSeedSameTrace) {
  for (const std::uint64_t seed : {1ull, 17ull, 999ull}) {
    const TraceFingerprint a = RunDeterministicWorkload(seed);
    const TraceFingerprint b = RunDeterministicWorkload(seed);
    EXPECT_TRUE(a == b) << "seed " << seed << ": " << a.events << "/" << b.events
                        << " events, " << a.end_time << "/" << b.end_time;
  }
}

TEST(DeterminismProperty, DifferentSeedsDifferentArrivals) {
  const TraceFingerprint a = RunDeterministicWorkload(5);
  const TraceFingerprint b = RunDeterministicWorkload(6);
  // Sums agree (same objects reduced count may differ, but at minimum the
  // traces should not be identical).
  EXPECT_FALSE(a.events == b.events && a.end_time == b.end_time);
}

}  // namespace
}  // namespace hoplite::core
