// Unit tests for reduce-tree topology math and the Eq. (1) degree model.
#include "core/reduce_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/units.h"

namespace hoplite::core {
namespace {

TEST(ReduceTreeShapeTest, SingleNode) {
  ReduceTreeShape t(1, 1);
  EXPECT_EQ(t.Parent(0), -1);
  EXPECT_TRUE(t.Children(0).empty());
  EXPECT_EQ(t.FillSequence(), (std::vector<int>{0}));
}

TEST(ReduceTreeShapeTest, ChainParentChild) {
  ReduceTreeShape t(5, 1);
  EXPECT_EQ(t.degree(), 1);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(t.Parent(i), i - 1);
  EXPECT_EQ(t.Children(0), (std::vector<int>{1}));
  EXPECT_EQ(t.Children(4), (std::vector<int>{}));
}

TEST(ReduceTreeShapeTest, ChainFillsDeepestFirst) {
  // d=1 in-order: first child then self, so the first arrival sits at the
  // bottom of the chain and the root is the last arrival.
  ReduceTreeShape t(5, 1);
  EXPECT_EQ(t.FillSequence(), (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(ReduceTreeShapeTest, StarShape) {
  ReduceTreeShape t(6, 6);  // d = n -> star
  EXPECT_EQ(t.degree(), 5);
  EXPECT_EQ(t.Children(0), (std::vector<int>{1, 2, 3, 4, 5}));
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(t.Parent(i), 0);
    EXPECT_TRUE(t.Children(i).empty());
  }
}

TEST(ReduceTreeShapeTest, StarRootIsSecondArrival) {
  // In-order on a star: first child, then root, then remaining children.
  ReduceTreeShape t(6, 6);
  EXPECT_EQ(t.FillSequence(), (std::vector<int>{1, 0, 2, 3, 4, 5}));
}

TEST(ReduceTreeShapeTest, BinarySixNodesMatchesPaperFigure5) {
  // Figure 5a: six objects arriving R1..R6 form a binary tree where R2
  // reduces {R1, R3}, R4 is the root over {R2-subtree, R6}, R6 reduces {R5}.
  ReduceTreeShape t(6, 2);
  const auto seq = t.FillSequence();
  EXPECT_EQ(seq, (std::vector<int>{3, 1, 4, 0, 5, 2}));
  // Arrival k -> position seq[k]; check the relationships the figure shows.
  // R2 (arrival 1) at position 1 is the parent of positions 3 and 4,
  // which are R1 (arrival 0) and R3 (arrival 2).
  EXPECT_EQ(t.Parent(3), 1);
  EXPECT_EQ(t.Parent(4), 1);
  // R4 (arrival 3) is the root.
  EXPECT_EQ(seq[3], 0);
  // R6 (arrival 5) at position 2 reduces R5 (arrival 4) at position 5.
  EXPECT_EQ(t.Parent(5), 2);
}

TEST(ReduceTreeShapeTest, FillSequenceIsAPermutation) {
  for (int n : {1, 2, 3, 7, 16, 31, 64}) {
    for (int d : {1, 2, 3, 4, n}) {
      ReduceTreeShape t(n, d);
      auto seq = t.FillSequence();
      std::sort(seq.begin(), seq.end());
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(seq[static_cast<std::size_t>(i)], i)
            << "n=" << n << " d=" << d;
      }
    }
  }
}

/// Reference recursive generalized in-order: first child subtree, the node
/// itself, then the remaining child subtrees. The production FillCursor is
/// iterative and lazy; this pins its output to the definition.
void ReferenceInOrder(const ReduceTreeShape& t, int pos, std::vector<int>& out) {
  const std::vector<int> kids = t.Children(pos);
  if (!kids.empty()) ReferenceInOrder(t, kids[0], out);
  out.push_back(pos);
  for (std::size_t i = 1; i < kids.size(); ++i) ReferenceInOrder(t, kids[i], out);
}

TEST(ReduceTreeShapeTest, FillCursorMatchesRecursiveInOrderDefinition) {
  for (int n : {1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 31, 33, 64, 100}) {
    for (int d : {1, 2, 3, 4, 5, n - 1, n}) {
      if (d < 1) continue;
      ReduceTreeShape t(n, d);
      std::vector<int> expected;
      ReferenceInOrder(t, 0, expected);
      ReduceTreeShape::FillCursor cursor(t);
      std::vector<int> streamed;
      while (!cursor.Done()) streamed.push_back(cursor.Next());
      EXPECT_EQ(streamed, expected) << "n=" << n << " d=" << d;
      EXPECT_EQ(t.FillSequence(), expected) << "n=" << n << " d=" << d;
    }
  }
}

TEST(ReduceTreeShapeTest, FillCursorStackStaysLogarithmicNotLinear) {
  // The point of the cursor: drawing the first k positions of a huge tree
  // must not materialize O(n) state. Indirectly pinned by drawing from a
  // 2^20-position binary tree; a materializing implementation would blow
  // the per-test time budget long before this loop finishes 10k draws.
  ReduceTreeShape huge(1 << 20, 2);
  ReduceTreeShape::FillCursor cursor(huge);
  std::vector<int> first;
  for (int i = 0; i < 16; ++i) first.push_back(cursor.Next());
  // Bottom-left leaf first (in-order), then its parent, then the sibling...
  const auto expected_prefix = huge.FillSequence();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)],
              expected_prefix[static_cast<std::size_t>(i)]);
  }
}

TEST(ReduceTreeShapeTest, EveryNonRootHasItsParentAsAncestor) {
  ReduceTreeShape t(16, 2);
  for (int pos = 1; pos < 16; ++pos) {
    const auto ancestors = t.Ancestors(pos);
    ASSERT_FALSE(ancestors.empty());
    EXPECT_EQ(ancestors.front(), t.Parent(pos));
    EXPECT_EQ(ancestors.back(), 0);  // root terminates every chain
  }
  EXPECT_TRUE(t.Ancestors(0).empty());
}

TEST(ReduceTreeShapeTest, ChildrenAndParentAreConsistent) {
  for (int n : {2, 5, 10, 33}) {
    for (int d : {1, 2, 3, n}) {
      ReduceTreeShape t(n, d);
      for (int pos = 0; pos < n; ++pos) {
        for (int child : t.Children(pos)) {
          EXPECT_EQ(t.Parent(child), pos) << "n=" << n << " d=" << d;
        }
      }
    }
  }
}

TEST(ReduceTreeShapeTest, DepthOfChainAndStar) {
  ReduceTreeShape chain(8, 1);
  EXPECT_EQ(chain.Depth(7), 7);
  ReduceTreeShape star(8, 8);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(star.Depth(i), 1);
}

TEST(ReduceDegreeModelTest, PredictionsMatchChunkAwareEquationOne) {
  const double L = 100e-6;
  const double B = Gbps(10);
  const double S = static_cast<double>(MB(64));
  const double C = static_cast<double>(MB(4));
  const double hop = L + C / B;  // per-hop pipeline latency for S >> chunk
  EXPECT_DOUBLE_EQ(PredictReduceSeconds(8, 1, L, B, S, C), 7 * hop + L + S / B);
  EXPECT_DOUBLE_EQ(PredictReduceSeconds(8, 8, L, B, S, C), L + 8 * S / B);
  EXPECT_DOUBLE_EQ(PredictReduceSeconds(8, 2, L, B, S, C),
                   hop * std::log(8.0) / std::log(2.0) + 2 * S / B);
}

TEST(ReduceDegreeModelTest, ChunkTermVanishesForSmallObjects) {
  // For S << chunk the hop cost degrades to ~S/B + L, close to Eq. (1).
  const double L = 100e-6;
  const double B = Gbps(10);
  const double S = 1024.0;
  const double full = PredictReduceSeconds(8, 1, L, B, S, static_cast<double>(MB(4)));
  EXPECT_NEAR(full, 7 * (L + S / B) + L + S / B, 1e-9);
}

TEST(ReduceDegreeModelTest, SmallObjectsPreferStar) {
  // S/B negligible => the n-ary tree (one hop) wins (§3.4.2).
  EXPECT_EQ(ChooseReduceDegree(16, 100e-6, Gbps(10), static_cast<double>(KB(4))), 16);
}

TEST(ReduceDegreeModelTest, HugeObjectsPreferChain) {
  // S >> chunk => the chain's per-hop cost amortizes and it pays the
  // bandwidth term exactly once.
  EXPECT_EQ(ChooseReduceDegree(16, 100e-6, Gbps(10), static_cast<double>(MB(256))), 1);
}

TEST(ReduceDegreeModelTest, MidSizeMayPreferBinary) {
  // Around the crossover the binary tree balances latency and bandwidth:
  // a 4 MB object is a single pipeline block, so the chain's n store-and-
  // forward hops dominate and d=2 wins at n=64 (Figure 15's 4 MB panel).
  EXPECT_EQ(ChooseReduceDegree(64, 100e-6, Gbps(10), static_cast<double>(MB(4))), 2);
}

TEST(ReduceDegreeModelTest, TinyClusters) {
  EXPECT_EQ(ChooseReduceDegree(1, 100e-6, Gbps(10), 1e6), 1);
  EXPECT_EQ(ChooseReduceDegree(2, 100e-6, Gbps(10), 1e6), 2);
}

TEST(ReduceDegreeModelTest, DepthMatchesDeepestShapePosition) {
  // The cost model must charge the pipeline depth the tree actually has:
  // the depth of the deepest (last level-order) position of the shape.
  for (int n : {2, 3, 5, 8, 9, 16, 17, 31, 33, 48, 64, 100}) {
    for (int d : {2, 3, 4, 7}) {
      if (d >= n) continue;
      EXPECT_EQ(ReduceTreeDepth(n, d), ReduceTreeShape(n, d).Depth(n - 1))
          << "n=" << n << " d=" << d;
    }
  }
  // Boundary sizes one past a full tree: depth grows by exactly one level.
  EXPECT_EQ(ReduceTreeDepth(7, 2), 2);
  EXPECT_EQ(ReduceTreeDepth(8, 2), 3);
  EXPECT_EQ(ReduceTreeDepth(9, 2), 3);   // log2(9) = 3.17 overstated this
  EXPECT_EQ(ReduceTreeDepth(15, 2), 3);
  EXPECT_EQ(ReduceTreeDepth(16, 2), 4);
  EXPECT_EQ(ReduceTreeDepth(17, 2), 4);  // log2(17) = 4.09 overstated this
}

TEST(ReduceDegreeModelTest, BoundaryClusterSizeDecisions) {
  // Degree decisions at off-power-of-two cluster sizes, the regime the
  // un-ceiled log_d(n) depth silently mispriced. Latency-bound objects take
  // the star, bandwidth-bound ones the chain, and the mid sizes the binary
  // tree — at every boundary n, not just powers of two.
  const double L = 100e-6;
  const double B = Gbps(10);
  const auto choose = [&](int n, std::int64_t bytes) {
    return ChooseReduceDegree(n, L, B, static_cast<double>(bytes));
  };
  for (const int n : {3, 5, 9, 17, 33}) {
    EXPECT_EQ(choose(n, KB(4)), n) << "n=" << n;        // latency-bound: star
    EXPECT_EQ(choose(n, MB(256)), 1) << "n=" << n;      // bandwidth-bound: chain
  }
  EXPECT_EQ(choose(3, MB(4)), 3);   // 3 nodes: star stays ahead of d=2
  EXPECT_EQ(choose(5, MB(4)), 2);
  EXPECT_EQ(choose(9, MB(4)), 2);
  EXPECT_EQ(choose(17, MB(4)), 2);
  EXPECT_EQ(choose(33, MB(4)), 2);
  EXPECT_EQ(choose(17, MB(32)), 2);
  EXPECT_EQ(choose(33, MB(32)), 2);
  // The regression the depth fix exists for: at n = 9 / 64 KB the true
  // depth-3 binary tree beats the star; the log2(9) = 3.17 model used to
  // overprice it and pick d = 9.
  EXPECT_EQ(choose(9, KB(64)), 2);
  const double t2 = PredictReduceSeconds(9, 2, L, B, static_cast<double>(KB(64)));
  const double t9 = PredictReduceSeconds(9, 9, L, B, static_cast<double>(KB(64)));
  EXPECT_LT(t2, t9);
}

}  // namespace
}  // namespace hoplite::core
