// Clusters on sharded-engine domains: a whole HopliteCluster placed on one
// domain of a ShardedSimulator must behave exactly like the same cluster on
// its private single-threaded engine — event for event — and independent
// clusters composed on one sharded engine must run concurrently without
// perturbing each other. The failure-injection variants drive the full
// kill/detect/recover machinery on every composed cluster at once, which is
// the TSan lane's concurrency workout for the protocol stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"
#include "sim/sharded_simulator.h"

namespace hoplite {
namespace {

struct SoloResult {
  SimTime finish = 0;
  std::uint64_t executed = 0;
};

core::HopliteCluster::Options TestCluster(int nodes, sim::Engine* engine = nullptr) {
  core::HopliteCluster::Options options = bench::PaperCluster(nodes);
  options.engine = engine;
  return options;
}

SoloResult SoloCollective(const std::string& op, int nodes, std::int64_t bytes) {
  core::HopliteCluster cluster(TestCluster(nodes));
  const auto ready = bench::Staggered(nodes, Microseconds(10));
  const auto done = bench::StartHopliteCollective(op, cluster, bytes, ready);
  SoloResult result;
  done.Then([&] { result.finish = cluster.Now(); });
  cluster.RunAll();
  EXPECT_TRUE(done.ready());
  result.executed = cluster.simulator().executed_events();
  return result;
}

TEST(ShardedClusterTest, ComposedClustersReproduceSoloRunsExactly) {
  const std::vector<std::string> ops = {"broadcast", "gather", "reduce", "allreduce"};
  const int nodes = 8;
  const std::int64_t bytes = 1 << 20;
  std::vector<SoloResult> solo;
  solo.reserve(ops.size());
  for (const std::string& op : ops) solo.push_back(SoloCollective(op, nodes, bytes));

  for (const int shards : {1, 2, 4}) {
    sim::ShardedSimulator eng({shards});
    std::vector<std::unique_ptr<core::HopliteCluster>> clusters;
    std::vector<Ref<std::vector<store::Buffer>>> done;
    std::vector<SimTime> finish(ops.size(), 0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const sim::DomainId d = eng.AddDomain("cluster-" + ops[i]);
      clusters.push_back(
          std::make_unique<core::HopliteCluster>(TestCluster(nodes, &eng.domain(d))));
      done.push_back(bench::StartHopliteCollective(
          ops[i], *clusters[i], bytes, bench::Staggered(nodes, Microseconds(10))));
      core::HopliteCluster& cluster = *clusters[i];
      SimTime& out = finish[i];
      done[i].Then([&cluster, &out] { out = cluster.Now(); });
    }
    eng.Run();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_TRUE(done[i].ready()) << ops[i];
      EXPECT_EQ(finish[i], solo[i].finish) << ops[i] << " shards=" << shards;
      EXPECT_EQ(clusters[i]->simulator().executed_events(), solo[i].executed)
          << ops[i] << " shards=" << shards;
    }
    // Independent clusters: one free-running window, truly parallel when
    // more than one shard hosts work.
    EXPECT_EQ(eng.barriers_crossed(), 1u);
    if (shards >= 4) {
      EXPECT_EQ(eng.max_parallel_shards(), 4);
    }
  }
}

// Issues a broadcast, kills the source mid-transfer (receivers must fail
// over or observe lost refs), recovers it, then re-broadcasts. Exercises
// failure detection, directory cleanup and membership notification.
SoloResult ChurnWorkload(core::HopliteCluster& cluster, std::int64_t bytes) {
  auto& sim = cluster.simulator();
  const int n = cluster.num_nodes();
  SoloResult result;

  const auto first =
      bench::StartHopliteBroadcast(cluster, bytes, bench::Staggered(n, Microseconds(5)));
  // Kill a mid-tree receiver while the broadcast is in flight, then bring it
  // back and let a second broadcast (fresh object name via a second cluster
  // round) complete on the survivors.
  const NodeID victim = static_cast<NodeID>(n / 2);
  At(sim, Milliseconds(1)).Then([&cluster, victim] {
    if (cluster.IsAlive(victim)) cluster.KillNode(victim);
  });
  At(sim, Milliseconds(400)).Then([&cluster, victim] {
    if (!cluster.IsAlive(victim)) cluster.RecoverNode(victim);
  });
  first.Then([&cluster, &result] { result.finish = cluster.Now(); });
  cluster.RunAll();
  result.executed = cluster.simulator().executed_events();
  return result;
}

TEST(ShardedClusterTest, ConcurrentFailureInjectionMatchesSoloRuns) {
  const int nodes = 8;
  const std::int64_t bytes = 4 << 20;
  SoloResult solo;
  {
    core::HopliteCluster cluster(TestCluster(nodes));
    solo = ChurnWorkload(cluster, bytes);
  }
  ASSERT_GT(solo.executed, 0u);

  // Four identical churn clusters on four shards, killed and recovered
  // concurrently; every one must reproduce the solo run exactly.
  sim::ShardedSimulator eng({4});
  std::vector<std::unique_ptr<core::HopliteCluster>> clusters;
  std::vector<Ref<std::vector<store::Buffer>>> done;
  std::vector<SimTime> finish(4, 0);
  for (int i = 0; i < 4; ++i) {
    const sim::DomainId d = eng.AddDomain("churn-" + std::to_string(i));
    clusters.push_back(
        std::make_unique<core::HopliteCluster>(TestCluster(nodes, &eng.domain(d))));
    core::HopliteCluster& cluster = *clusters[static_cast<std::size_t>(i)];
    auto& sim = cluster.simulator();
    done.push_back(bench::StartHopliteBroadcast(cluster, bytes,
                                                bench::Staggered(nodes, Microseconds(5))));
    const NodeID victim = static_cast<NodeID>(nodes / 2);
    At(sim, Milliseconds(1)).Then([&cluster, victim] {
      if (cluster.IsAlive(victim)) cluster.KillNode(victim);
    });
    At(sim, Milliseconds(400)).Then([&cluster, victim] {
      if (!cluster.IsAlive(victim)) cluster.RecoverNode(victim);
    });
    SimTime& out = finish[static_cast<std::size_t>(i)];
    done.back().Then([&cluster, &out] { out = cluster.Now(); });
  }
  eng.Run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(finish[static_cast<std::size_t>(i)], solo.finish) << "cluster " << i;
    EXPECT_EQ(clusters[static_cast<std::size_t>(i)]->simulator().executed_events(),
              solo.executed)
        << "cluster " << i;
  }
  EXPECT_EQ(eng.max_parallel_shards(), 4);
}

TEST(ShardedClusterTest, SequencedDriverSurfaceWorksForClustersOnDomains) {
  // RunUntil / RunUntilPredicate through a cluster lane drive the whole
  // engine in sequenced mode; a single cluster must see reference behavior.
  SoloResult solo = SoloCollective("broadcast", 4, 1 << 16);

  sim::ShardedSimulator eng({2});
  const sim::DomainId d = eng.AddDomain("main");
  core::HopliteCluster cluster(TestCluster(4, &eng.domain(d)));
  const auto done = bench::StartHopliteCollective("broadcast", cluster, 1 << 16,
                                                  bench::Staggered(4, Microseconds(10)));
  SimTime finish = 0;
  done.Then([&] { finish = cluster.Now(); });
  EXPECT_TRUE(
      cluster.simulator().RunUntilPredicate([&done] { return done.ready(); }));
  EXPECT_EQ(finish, solo.finish);
  // Drain the tail (directory cleanup etc.) and check the full event count.
  cluster.RunAll();
  EXPECT_EQ(cluster.simulator().executed_events(), solo.executed);
}

}  // namespace
}  // namespace hoplite
