// Unit tests for the deterministic RNG.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hoplite {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(23);
  double sum = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(29);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextGaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.Shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, ShuffleChangesOrderWithHighProbability) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(41);
  (void)parent_copy.NextU64();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent_copy.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace hoplite
