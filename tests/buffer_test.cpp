// Unit tests for Buffer, ReduceOp and ChunkLayout.
#include "store/buffer.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace hoplite::store {
namespace {

TEST(BufferTest, SizeOnlyBuffer) {
  const Buffer b = Buffer::OfSize(1234);
  EXPECT_EQ(b.size(), 1234);
  EXPECT_FALSE(b.has_values());
}

TEST(BufferTest, ValueBuffer) {
  const Buffer b = Buffer::FromValues({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(b.size(), 12);
  ASSERT_TRUE(b.has_values());
  EXPECT_EQ(b.values()[1], 2.0f);
}

TEST(BufferTest, EmptyBuffer) {
  const Buffer b = Buffer::OfSize(0);
  EXPECT_EQ(b.size(), 0);
  const Buffer v = Buffer::FromValues({});
  EXPECT_EQ(v.size(), 0);
  EXPECT_TRUE(v.has_values());
}

TEST(BufferTest, ReduceSum) {
  const Buffer a = Buffer::FromValues({1, 2, 3});
  const Buffer b = Buffer::FromValues({10, 20, 30});
  const Buffer r = Buffer::Reduce(a, b, ReduceOp::kSum);
  ASSERT_TRUE(r.has_values());
  EXPECT_EQ(r.values(), (std::vector<float>{11, 22, 33}));
}

TEST(BufferTest, ReduceMinMax) {
  const Buffer a = Buffer::FromValues({1, 20, 3});
  const Buffer b = Buffer::FromValues({10, 2, 30});
  EXPECT_EQ(Buffer::Reduce(a, b, ReduceOp::kMin).values(), (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(Buffer::Reduce(a, b, ReduceOp::kMax).values(), (std::vector<float>{10, 20, 30}));
}

TEST(BufferTest, ReduceMixedDegradesToSizeOnly) {
  const Buffer a = Buffer::FromValues({1, 2, 3});
  const Buffer b = Buffer::OfSize(12);
  const Buffer r = Buffer::Reduce(a, b, ReduceOp::kSum);
  EXPECT_EQ(r.size(), 12);
  EXPECT_FALSE(r.has_values());
}

TEST(BufferTest, CopyIsShallowAndCheap) {
  const Buffer a = Buffer::FromValues(std::vector<float>(1024, 1.0f));
  const Buffer b = a;  // shared payload
  EXPECT_EQ(&a.values(), &b.values());
}

TEST(ChunkLayoutTest, ExactMultiple) {
  const ChunkLayout layout{MB(8), MB(4)};
  EXPECT_EQ(layout.num_chunks(), 2);
  EXPECT_EQ(layout.ChunkBytes(0), MB(4));
  EXPECT_EQ(layout.ChunkBytes(1), MB(4));
  EXPECT_EQ(layout.PrefixBytes(2), MB(8));
}

TEST(ChunkLayoutTest, TailChunk) {
  const ChunkLayout layout{MB(4) + 123, MB(4)};
  EXPECT_EQ(layout.num_chunks(), 2);
  EXPECT_EQ(layout.ChunkBytes(0), MB(4));
  EXPECT_EQ(layout.ChunkBytes(1), 123);
  EXPECT_EQ(layout.PrefixBytes(1), MB(4));
  EXPECT_EQ(layout.PrefixBytes(2), MB(4) + 123);
}

TEST(ChunkLayoutTest, SmallerThanOneChunk) {
  const ChunkLayout layout{100, MB(4)};
  EXPECT_EQ(layout.num_chunks(), 1);
  EXPECT_EQ(layout.ChunkBytes(0), 100);
}

TEST(ChunkLayoutTest, EmptyObjectHasOneEmptyChunk) {
  const ChunkLayout layout{0, MB(4)};
  EXPECT_EQ(layout.num_chunks(), 1);
  EXPECT_EQ(layout.ChunkBytes(0), 0);
  EXPECT_EQ(layout.PrefixBytes(1), 0);
}

}  // namespace
}  // namespace hoplite::store
