// Tests for the per-tenant QoS subsystem: the token bucket's deterministic
// pacing arithmetic, the weighted water-level solver, tenant-first WFQ at
// an oversubscribed uplink, flow-queuing AQM marks + backpressure, client
// admission control (kThrottled with a retry hint, token refund on
// failure), the tenant-accounting edges (coalesced fetches charge the
// window-opening tenant, broadcast relay flows inherit the requesting
// receiver's tenant), and bit-identity of the misbehaving-tenant scenario
// across engine shard counts.
#include "qos/qos.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"
#include "net/rack_fabric.h"
#include "qos/token_bucket.h"
#include "qos/wfq.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/scenarios.h"

namespace hoplite::qos {
namespace {

// ----------------------------------------------------------------------
// Token bucket: virtual-scheduling arithmetic.
// ----------------------------------------------------------------------

TEST(TokenBucketTest, BanksBurstCreditThenPacesToSustainedRate) {
  // 10 ops/s, 2 ops of depth. After 400 ms idle the bank is full: the
  // burst (2 tokens) plus the currently refilling one go out immediately,
  // then grants pace at the 100 ms refill gap.
  TokenBucket bucket(10.0, 2.0);
  const SimTime start = Milliseconds(400);
  EXPECT_EQ(bucket.Acquire(start), start);
  EXPECT_EQ(bucket.Acquire(start), start);
  EXPECT_EQ(bucket.Acquire(start), start);
  EXPECT_EQ(bucket.Acquire(start), start + Milliseconds(100));
  EXPECT_EQ(bucket.NextAdmission(start), start + Milliseconds(200));
}

TEST(TokenBucketTest, RefundReleasesTheChargedToken) {
  TokenBucket bucket(1.0, 0.0);
  EXPECT_EQ(bucket.Acquire(0), 0);
  // The op failed: its token comes back, so the next acquire is free again.
  bucket.Refund();
  EXPECT_EQ(bucket.Acquire(0), 0);
  // Without a refund the following acquire paces a full second out.
  EXPECT_EQ(bucket.Acquire(0), Seconds(1));
}

TEST(TokenBucketTest, PenaltyPushesFutureAdmissionsLater) {
  TokenBucket bucket(10.0, 0.0);
  EXPECT_EQ(bucket.Acquire(0), 0);
  bucket.Penalize(3.0);  // 3 tokens of debt = 300 ms
  EXPECT_EQ(bucket.NextAdmission(0), Milliseconds(400));
}

// ----------------------------------------------------------------------
// The per-link water-level solver.
// ----------------------------------------------------------------------

TEST(WfqSolverTest, EqualWeightsSplitCapacityEvenly) {
  const std::vector<TenantDemand> demands = {
      {.tenant = 0, .weight = 1.0, .frozen = 0.0, .unfrozen = 1},
      {.tenant = 1, .weight = 1.0, .frozen = 0.0, .unfrozen = 3},
  };
  EXPECT_DOUBLE_EQ(SolveTenantWaterLevel(demands, 10.0), 5.0);
}

TEST(WfqSolverTest, WeightsScaleTheLevels) {
  const std::vector<TenantDemand> demands = {
      {.tenant = 0, .weight = 3.0, .frozen = 0.0, .unfrozen = 1},
      {.tenant = 1, .weight = 1.0, .frozen = 0.0, .unfrozen = 1},
  };
  // 3 nu + nu = 8 -> nu = 2: tenant 0 gets 6, tenant 1 gets 2.
  EXPECT_DOUBLE_EQ(SolveTenantWaterLevel(demands, 8.0), 2.0);
}

TEST(WfqSolverTest, FrozenAllocationsFloorTheirTenant) {
  // Tenant 0's flows froze at 6 elsewhere; only tenant 1 still fills here:
  // max(6, nu) + nu = 10 -> nu = 4 (tenant 0 keeps its 6-rate floor).
  const std::vector<TenantDemand> demands = {
      {.tenant = 0, .weight = 1.0, .frozen = 6.0, .unfrozen = 0},
      {.tenant = 1, .weight = 1.0, .frozen = 0.0, .unfrozen = 1},
  };
  EXPECT_DOUBLE_EQ(SolveTenantWaterLevel(demands, 10.0), 4.0);
}

// ----------------------------------------------------------------------
// WFQ at the fabric: tenant-first sharing of an oversubscribed uplink.
// ----------------------------------------------------------------------

/// 2 racks behind a 4:1 uplink (2 NICs * 10 Gbps / 4 = 5 Gbps shared);
/// per_message_overhead zeroed for exact arithmetic.
net::ClusterConfig QosRackConfig() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.nic_bandwidth = Gbps(10);
  cfg.one_way_latency = Microseconds(50);
  cfg.per_message_overhead = 0;
  cfg.fabric.topology = net::TopologyKind::kRack;
  cfg.fabric.num_racks = 2;
  cfg.fabric.oversubscription = 4.0;
  return cfg;
}

constexpr SimTime kSlackNs = 1000;  // fair-share recompute ceil-rounding

TEST(QosFabricTest, WfqSplitsTheUplinkByTenantNotByFlowCount) {
  sim::Simulator sim;
  net::ClusterConfig cfg = QosRackConfig();
  cfg.qos.wfq = true;
  net::RackFabric net(sim, cfg);

  // Tenant 1: one cross-rack flow. Tenant 2: three concurrent ones. Under
  // per-flow max-min tenant 2 would take 3/4 of the uplink; tenant-first
  // WFQ pins each tenant at 2.5 Gbps, so the lone flow runs at the full
  // tenant share and finishes first.
  SimTime lone_done = -1;
  std::vector<SimTime> pack_done;
  net.Send(0, 2, MB(4), [&] { lone_done = sim.Now(); }, nullptr, TenantId{1});
  for (int i = 0; i < 3; ++i) {
    net.Send(1, 3, MB(4), [&] { pack_done.push_back(sim.Now()); }, nullptr,
             TenantId{2});
  }
  sim.Run();

  // Lone flow: 4 MB at its 2.5 Gbps tenant share.
  const SimTime lone_expect = TransferTime(MB(4), Gbps(2.5)) + Microseconds(50);
  EXPECT_NEAR(lone_done, lone_expect, kSlackNs);
  // The pack's 12 MB ride tenant 2's 2.5 Gbps until the lone flow is done,
  // then the whole 5 Gbps: strictly after the lone flow either way.
  ASSERT_EQ(pack_done.size(), 3u);
  for (const SimTime done : pack_done) EXPECT_GT(done, lone_done + Milliseconds(5));
}

TEST(QosFabricTest, TenantWeightsSkewTheSplit) {
  sim::Simulator sim;
  net::ClusterConfig cfg = QosRackConfig();
  cfg.qos.wfq = true;
  cfg.qos.tenant_weights = {1.0, 3.0, 1.0};  // tenant 1 is 3x tenant 2
  net::RackFabric net(sim, cfg);

  SimTime heavy_done = -1;
  net.Send(0, 2, MB(4), [&] { heavy_done = sim.Now(); }, nullptr, TenantId{1});
  net.Send(1, 3, MB(4), [&] {}, nullptr, TenantId{2});
  sim.Run();

  // Weighted split of the 5 Gbps uplink: 3.75 vs 1.25 Gbps.
  const SimTime heavy_expect = TransferTime(MB(4), Gbps(3.75)) + Microseconds(50);
  EXPECT_NEAR(heavy_done, heavy_expect, kSlackNs);
}

TEST(QosFabricTest, AqmMarksSustainedUplinkHogsAndBackpressuresTheSender) {
  sim::Simulator sim;
  net::ClusterConfig cfg = QosRackConfig();
  cfg.qos.wfq = true;
  cfg.qos.aqm = true;
  net::RackFabric net(sim, cfg);

  std::vector<TenantId> backpressured;
  net.SetBackpressureHandler(
      [&](NodeID, TenantId tenant) { backpressured.push_back(tenant); });

  // 64 MB of cross-rack backlog at a 5 Gbps uplink is ~100 ms of sojourn —
  // far past the AQM target, sustained past its interval.
  int delivered = 0;
  for (int i = 0; i < 8; ++i) {
    net.Send(i % 2, 2 + i % 2, MB(8), [&] { ++delivered; }, nullptr, TenantId{3});
  }
  sim.Run();

  EXPECT_GT(net.aqm_marks(), 0);
  ASSERT_FALSE(backpressured.empty());
  for (const TenantId tenant : backpressured) EXPECT_EQ(tenant, TenantId{3});
  // Pause/resume must never lose a flow: everything still lands.
  EXPECT_EQ(delivered, 8);
}

// ----------------------------------------------------------------------
// Client admission control.
// ----------------------------------------------------------------------

core::HopliteCluster::Options AdmissionOptions(double ops_per_s, double burst_ops,
                                               int max_outstanding) {
  core::HopliteCluster::Options options;
  options.network.num_nodes = 4;
  options.network.qos.admission = true;
  options.network.qos.admission_tuning.ops_per_s = ops_per_s;
  options.network.qos.admission_tuning.burst_ops = burst_ops;
  options.network.qos.admission_tuning.max_outstanding_ops = max_outstanding;
  return options;
}

TEST(QosAdmissionTest, OverOutstandingCapRejectsWithRetryHint) {
  core::HopliteCluster cluster(AdmissionOptions(1000.0, 4.0, 2));
  const TenantId tenant{1};
  std::vector<Ref<ObjectID>> puts;
  for (int i = 0; i < 4; ++i) {
    puts.push_back(cluster.client(0).Put(ObjectID::FromName("op").WithIndex(i),
                                         store::Buffer::OfSize(MB(8)), tenant));
  }
  // The cap polices synchronously: ops beyond 2 outstanding reject now.
  EXPECT_TRUE(puts[2].failed());
  EXPECT_EQ(puts[2].error().code, RefErrorCode::kThrottled);
  EXPECT_GE(puts[2].error().retry_after, 1);
  EXPECT_GE(cluster.client(0).throttled_ops(), 2);
  EXPECT_EQ(cluster.client(0).outstanding_ops(tenant), 2);

  cluster.RunAll();
  // Admitted ops settled and released their slots; rejected ones never held
  // any.
  EXPECT_TRUE(puts[0].ready());
  EXPECT_TRUE(puts[1].ready());
  EXPECT_EQ(cluster.client(0).outstanding_ops(tenant), 0);
}

TEST(QosAdmissionTest, UntaggedOpsBypassAdmission) {
  core::HopliteCluster cluster(AdmissionOptions(1000.0, 4.0, 1));
  std::vector<Ref<ObjectID>> puts;
  for (int i = 0; i < 4; ++i) {
    puts.push_back(cluster.client(0).Put(ObjectID::FromName("op").WithIndex(i),
                                         store::Buffer::OfSize(KB(64))));
  }
  cluster.RunAll();
  for (const auto& put : puts) EXPECT_TRUE(put.ready());
  EXPECT_EQ(cluster.client(0).throttled_ops(), 0);
  EXPECT_EQ(cluster.client(0).paced_ops(), 0);
}

TEST(QosAdmissionTest, FailedOpsRefundTheirToken) {
  // 1 op/s, no burst: a second admission within the same second paces —
  // unless the first op failed and refunded its token.
  core::HopliteCluster cluster(AdmissionOptions(1.0, 0.0, 8));
  const TenantId tenant{1};
  const ObjectID missing = ObjectID::FromName("missing");
  auto& client = cluster.client(0);
  const auto first = client.Get(
      missing, core::GetOptions{.timeout = Milliseconds(50), .tenant = tenant});
  Ref<store::Buffer> second;
  cluster.simulator().ScheduleAt(Milliseconds(100), [&] {
    second = client.Get(
        missing, core::GetOptions{.timeout = Milliseconds(50), .tenant = tenant});
  });
  cluster.RunAll();

  EXPECT_TRUE(first.failed());
  EXPECT_EQ(first.error().code, RefErrorCode::kTimeout);
  EXPECT_TRUE(second.failed());
  // The refunded token admitted the second Get on the spot: its timeout ran
  // from the issue instant, and nothing was ever paced.
  EXPECT_EQ(client.paced_ops(), 0);
  EXPECT_EQ(cluster.simulator().Now(), Milliseconds(150));
}

// ----------------------------------------------------------------------
// Tenant-accounting edges.
// ----------------------------------------------------------------------

TEST(QosAccountingTest, CoalescedInlineFetchChargesTheWindowOpeningTenant) {
  core::HopliteCluster::Options options;
  options.network.num_nodes = 4;
  options.network.cache.coalescing = true;
  core::HopliteCluster cluster(options);

  const ObjectID hot = ObjectID::FromName("hot");
  cluster.client(0).Put(hot, store::Buffer::OfSize(KB(16)));
  cluster.RunAll();

  // Two concurrent claims for the inline object: node 1 (tenant 1) opens
  // the interest window, node 2 (tenant 2) attaches to it.
  const auto opener_get = cluster.client(1).Get(
      hot, core::GetOptions{.read_only = true, .tenant = TenantId{1}});
  const auto attacher_get = cluster.client(2).Get(
      hot, core::GetOptions{.read_only = true, .tenant = TenantId{2}});
  cluster.RunAll();
  EXPECT_TRUE(opener_get.ready());
  EXPECT_TRUE(attacher_get.ready());

  // The window opener pays the shard's inline egress — one payload, not
  // two. The attacher is served through the fan-out machinery and pays its
  // own relay transfer, never a second shard fetch.
  const std::int64_t opener = cluster.network().TenantBytes(TenantId{1});
  EXPECT_GE(opener, KB(16));
  EXPECT_LT(opener, KB(16) + KB(4));  // payload + control framing, no double charge
}

TEST(QosAccountingTest, BroadcastRelayFlowsInheritTheRequestersTenant) {
  core::HopliteCluster::Options options;
  options.network.num_nodes = 4;
  core::HopliteCluster cluster(options);

  // One producer, three concurrent receivers with distinct tenants: the
  // broadcast tree serves some receivers from other receivers' partial
  // copies, and each such relay flow must charge the *requesting*
  // receiver's tenant, not the relaying sender's.
  const ObjectID object = ObjectID::FromName("bcast");
  cluster.client(0).Put(object, store::Buffer::OfSize(KB(256)));
  cluster.RunAll();
  std::vector<Ref<store::Buffer>> gets;
  for (NodeID receiver = 1; receiver < 4; ++receiver) {
    gets.push_back(cluster.client(receiver).Get(
        object,
        core::GetOptions{.read_only = true, .tenant = TenantId{4 + receiver}}));
  }
  cluster.RunAll();
  for (const auto& get : gets) EXPECT_TRUE(get.ready());

  for (NodeID receiver = 1; receiver < 4; ++receiver) {
    EXPECT_GE(cluster.network().TenantBytes(TenantId{4 + receiver}), KB(256))
        << "receiver " << receiver << " must be charged for its own delivery";
  }
}

}  // namespace
}  // namespace hoplite::qos

// ----------------------------------------------------------------------
// Scenario-level determinism: the fairness figure's substrate must be
// bit-identical across engine shard counts, QoS fully on.
// ----------------------------------------------------------------------

namespace hoplite::workload {
namespace {

ScenarioSpec SmallMisbehavingSpec(int engine_shards) {
  ScenarioTuning tuning;
  tuning.num_nodes = 8;
  tuning.horizon = Milliseconds(100);
  tuning.seed = 13;
  tuning.load_scale = 2.0;
  tuning.max_object_bytes = KB(512);
  ScenarioSpec spec = BuildScenario("misbehaving-tenant", tuning);
  spec.engine_shards = engine_shards;
  spec.qos.wfq = true;
  spec.qos.aqm = true;
  spec.qos.admission = true;
  spec.qos.tenant_weights.assign(spec.tenants.size(), 1.0);
  return spec;
}

TEST(QosScenarioTest, MisbehavingTenantRunIsBitIdenticalAcrossShardCounts) {
  const LoadReport reference = RunScenario(SmallMisbehavingSpec(1), BackendKind::kHoplite);
  const LoadReport sharded = RunScenario(SmallMisbehavingSpec(4), BackendKind::kHoplite);
  ASSERT_GT(reference.total.offered, 0u);
  ASSERT_EQ(reference.ops.size(), sharded.ops.size());
  for (std::size_t i = 0; i < reference.ops.size(); ++i) {
    EXPECT_EQ(reference.ops[i].issued_at, sharded.ops[i].issued_at) << "op " << i;
    EXPECT_EQ(reference.ops[i].settled_at, sharded.ops[i].settled_at) << "op " << i;
    EXPECT_EQ(reference.ops[i].ok, sharded.ops[i].ok) << "op " << i;
  }
  EXPECT_EQ(reference.end_time, sharded.end_time);
  EXPECT_DOUBLE_EQ(reference.fairness, sharded.fairness);
}

}  // namespace
}  // namespace hoplite::workload
