// Tests for the open-loop workload engine: trace determinism, driver
// accounting (including the error-tolerant keep-counting contract), the
// canonical scenario registry, matched-load backend comparisons, and the
// bit-for-bit determinism of whole scenario runs.
#include "workload/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/units.h"
#include "workload/backend.h"
#include "workload/scenario.h"
#include "workload/scenarios.h"

namespace hoplite::workload {
namespace {

ScenarioSpec SmallMixedSpec() {
  ScenarioTuning tuning;
  tuning.num_nodes = 8;
  tuning.load_scale = 1.0;
  tuning.horizon = Milliseconds(300);
  tuning.seed = 7;
  tuning.max_object_bytes = MB(1);
  return BuildScenario("mixed", tuning);
}

bool SameOp(const WorkloadOp& a, const WorkloadOp& b) {
  return a.tenant == b.tenant && a.at == b.at && a.kind == b.kind &&
         a.bytes == b.bytes && a.home == b.home && a.peers == b.peers &&
         a.id == b.id && a.fresh == b.fresh && a.delete_after == b.delete_after &&
         a.get_timeout == b.get_timeout;
}

TEST(WorkloadTraceTest, SameSeedYieldsBitIdenticalTraces) {
  const ScenarioSpec spec = SmallMixedSpec();
  const WorkloadTrace one = BuildTrace(spec);
  const WorkloadTrace two = BuildTrace(spec);
  ASSERT_EQ(one.ops.size(), two.ops.size());
  ASSERT_FALSE(one.ops.empty());
  for (std::size_t i = 0; i < one.ops.size(); ++i) {
    EXPECT_TRUE(SameOp(one.ops[i], two.ops[i])) << "op " << i << " diverged";
  }

  ScenarioSpec reseeded = spec;
  reseeded.seed = 8;
  const WorkloadTrace other = BuildTrace(reseeded);
  bool any_diff = other.ops.size() != one.ops.size();
  for (std::size_t i = 0; !any_diff && i < one.ops.size(); ++i) {
    any_diff = !SameOp(one.ops[i], other.ops[i]);
  }
  EXPECT_TRUE(any_diff) << "a different seed must draw a different trace";
}

TEST(WorkloadTraceTest, OpsAreWellFormed) {
  const ScenarioSpec spec = SmallMixedSpec();
  const WorkloadTrace trace = BuildTrace(spec);
  std::set<std::uint64_t> fresh_ids;
  SimTime last = 0;
  for (const WorkloadOp& op : trace.ops) {
    EXPECT_GE(op.at, last) << "ops must be sorted by arrival";
    last = op.at;
    EXPECT_LE(op.at, spec.horizon);
    EXPECT_GT(op.bytes, 0);
    EXPECT_LE(op.bytes, MB(1)) << "max_object_bytes cap must hold";
    EXPECT_GE(op.home, 0);
    EXPECT_LT(op.home, spec.num_nodes);
    for (const NodeID peer : op.peers) {
      EXPECT_NE(peer, op.home);
      EXPECT_GE(peer, 0);
      EXPECT_LT(peer, spec.num_nodes);
    }
    EXPECT_TRUE(std::is_sorted(op.peers.begin(), op.peers.end()));
    EXPECT_EQ(std::adjacent_find(op.peers.begin(), op.peers.end()), op.peers.end());
    if (op.fresh) {
      EXPECT_TRUE(fresh_ids.insert(op.id.value()).second)
          << "fresh ops must create distinct objects";
    } else {
      EXPECT_TRUE(fresh_ids.count(op.id.value()) > 0)
          << "a reuse op must reference an earlier object";
    }
    switch (op.kind) {
      case OpKind::kPut:
        EXPECT_TRUE(op.peers.empty());
        break;
      case OpKind::kGet:
        EXPECT_LE(op.peers.size(), 1u);
        break;
      case OpKind::kBroadcast:
      case OpKind::kReduce:
        EXPECT_GE(op.peers.size(), 1u);
        break;
    }
  }
}

TEST(WorkloadDriverTest, MixedScenarioDrainsOnBothBackendsAtMatchedLoad) {
  const WorkloadTrace trace = BuildTrace(SmallMixedSpec());
  const auto hoplite = MakeBackend(BackendKind::kHoplite, trace.spec);
  const LoadReport hop = RunTrace(trace, *hoplite);
  const auto ray = MakeBackend(BackendKind::kRay, trace.spec);
  const LoadReport ray_report = RunTrace(trace, *ray);

  for (const LoadReport& report : {hop, ray_report}) {
    SCOPED_TRACE(report.backend);
    EXPECT_TRUE(report.all_settled);
    EXPECT_EQ(report.total.offered, trace.ops.size());
    EXPECT_EQ(report.total.completed, trace.ops.size());
    EXPECT_EQ(report.total.failed, 0u);
    EXPECT_EQ(report.total.unsettled, 0u);
    EXPECT_GT(report.total.latency.p50, 0.0);
    EXPECT_GE(report.total.latency.p99, report.total.latency.p50);
    EXPECT_GT(report.fairness, 0.0);
    EXPECT_LE(report.fairness, 1.0 + 1e-12);
    // Aggregates are consistent.
    std::size_t tenant_sum = 0;
    for (const TenantLoad& tenant : report.tenants) tenant_sum += tenant.completed;
    EXPECT_EQ(tenant_sum, report.total.completed);
    std::size_t kind_sum = 0;
    for (const KindLoad& kind : report.kinds) kind_sum += kind.completed;
    EXPECT_EQ(kind_sum, report.total.completed);
  }
  // Everyone completed everything, so fairness is exactly 1 on both.
  EXPECT_DOUBLE_EQ(hop.fairness, 1.0);
  // The paper's regime: at matched offered load Hoplite's tail beats the
  // point-to-point baseline's.
  EXPECT_LE(hop.total.latency.p99, ray_report.total.latency.p99);
}

TEST(WorkloadDriverTest, SameSeedScenarioRunIsBitForBitDeterministic) {
  const ScenarioSpec spec = SmallMixedSpec();
  const LoadReport one = RunScenario(spec, BackendKind::kHoplite);
  const LoadReport two = RunScenario(spec, BackendKind::kHoplite);
  ASSERT_EQ(one.ops.size(), two.ops.size());
  for (std::size_t i = 0; i < one.ops.size(); ++i) {
    EXPECT_EQ(one.ops[i].settled_at, two.ops[i].settled_at) << "op " << i;
    EXPECT_EQ(one.ops[i].ok, two.ops[i].ok) << "op " << i;
  }
  EXPECT_EQ(one.end_time, two.end_time);
  EXPECT_EQ(one.store.evictions, two.store.evictions);
  EXPECT_EQ(one.store.peak_used_bytes, two.store.peak_used_bytes);
  ASSERT_EQ(one.tenants.size(), two.tenants.size());
  for (std::size_t t = 0; t < one.tenants.size(); ++t) {
    EXPECT_EQ(one.tenants[t].completed, two.tenants[t].completed);
    EXPECT_EQ(one.tenants[t].latency.count, two.tenants[t].latency.count);
  }
}

TEST(WorkloadDriverTest, KeepsCountingPastTimedOutOps) {
  // A tenant whose Gets cannot possibly finish in time: every op fails with
  // kTimeout, and the driver reports all of them instead of rejecting at
  // the first failure (the WhenAllSettled contract).
  ScenarioSpec spec;
  spec.name = "doomed";
  spec.num_nodes = 4;
  spec.horizon = Milliseconds(50);
  spec.seed = 3;
  TenantSpec tenant;
  tenant.name = "impatient";
  tenant.arrivals = {ArrivalProcess::Kind::kPeriodic, 200.0};
  tenant.mix = OpMix{0.0, 1.0, 0.0, 0.0};
  tenant.sizes = SizeDistribution::Fixed(MB(1));
  tenant.get_timeout = Microseconds(1);  // transfers need far longer
  spec.tenants.push_back(tenant);

  const LoadReport report = RunScenario(spec, BackendKind::kHoplite);
  EXPECT_TRUE(report.all_settled);
  EXPECT_GT(report.total.offered, 0u);
  EXPECT_EQ(report.total.completed, 0u);
  EXPECT_EQ(report.total.failed, report.total.offered);
  EXPECT_EQ(report.total.unsettled, 0u);
  for (const OpOutcome& outcome : report.ops) {
    EXPECT_EQ(outcome.error, RefErrorCode::kTimeout);
  }
}

TEST(WorkloadDriverTest, ClosedLoopTenantsChainIssueOnSettle) {
  // One closed-loop tenant of back-to-back Puts: op k+1 must go out exactly
  // think_gap after op k settled, never at its pre-drawn arrival.
  ScenarioSpec spec;
  spec.name = "closed";
  spec.num_nodes = 4;
  spec.horizon = Milliseconds(50);
  spec.seed = 5;
  TenantSpec tenant;
  tenant.name = "interactive";
  tenant.closed_loop = true;
  tenant.arrivals = {ArrivalProcess::Kind::kPeriodic, 1000.0};
  tenant.mix = OpMix{1.0, 0.0, 0.0, 0.0};
  tenant.sizes = SizeDistribution::Fixed(MB(4));  // ~0.4 ms store write each
  spec.tenants.push_back(tenant);

  const WorkloadTrace trace = BuildTrace(spec);
  ASSERT_GT(trace.ops.size(), 2u);
  const auto backend = MakeBackend(BackendKind::kHoplite, spec);
  const LoadReport report = RunTrace(trace, *backend);

  EXPECT_TRUE(report.all_settled);
  EXPECT_EQ(report.total.completed, trace.ops.size());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const OpOutcome& outcome = report.ops[i];
    ASSERT_TRUE(outcome.settled());
    if (i == 0) {
      EXPECT_EQ(outcome.issued_at, trace.ops[i].at);
      continue;
    }
    // The chain rule, exactly: settle + think = next issue.
    EXPECT_EQ(outcome.issued_at,
              report.ops[i - 1].settled_at + trace.ops[i].think_gap)
        << "op " << i;
    // And with a think rate faster than the op latency, the chain must lag
    // the open-loop schedule the trace pre-drew.
    EXPECT_GT(outcome.issued_at, trace.ops[i].at) << "op " << i;
  }
}

TEST(WorkloadDriverTest, FaultScheduleKillsAndRecoversMidRun) {
  // A pinned-home Put tenant; its node dies for the middle third of the
  // run. Ops issued in the dead window reject kProducerLost, ops after the
  // recovery complete again, and the driver drains everything.
  ScenarioSpec spec;
  spec.name = "faulted";
  spec.num_nodes = 4;
  spec.horizon = Milliseconds(90);
  spec.seed = 6;
  spec.faults.push_back(FaultEvent{Milliseconds(30), 1, /*kill=*/true});
  spec.faults.push_back(FaultEvent{Milliseconds(60), 1, /*kill=*/false});
  TenantSpec tenant;
  tenant.name = "steady";
  tenant.arrivals = {ArrivalProcess::Kind::kPeriodic, 500.0};
  tenant.mix = OpMix{1.0, 0.0, 0.0, 0.0};
  tenant.sizes = SizeDistribution::Fixed(KB(64));
  tenant.pinned_home = 1;
  spec.tenants.push_back(tenant);

  const LoadReport report = RunScenario(spec, BackendKind::kHoplite);
  EXPECT_TRUE(report.all_settled);
  EXPECT_EQ(report.total.unsettled, 0u);
  EXPECT_GT(report.total.failed, 0u);
  EXPECT_GT(report.total.completed, 0u);
  for (const OpOutcome& outcome : report.ops) {
    // Inclusive on both edges: an op issued at the kill instant issues
    // first (schedule order) and then dies mid-flight; one issued at the
    // recovery instant still sees the node down.
    const bool in_dead_window = outcome.issued_at >= Milliseconds(30) &&
                                outcome.issued_at <= Milliseconds(60);
    EXPECT_EQ(outcome.ok, !in_dead_window) << "op issued at " << outcome.issued_at;
    if (!outcome.ok) {
      EXPECT_EQ(outcome.error, RefErrorCode::kProducerLost);
    }
  }
}

TEST(WorkloadScenarioRegistryTest, CanonicalScenariosAreRegistered) {
  EXPECT_NE(ScenarioRegistry::Instance().Find("serving"), nullptr);
  EXPECT_NE(ScenarioRegistry::Instance().Find("mixed"), nullptr);
  EXPECT_NE(ScenarioRegistry::Instance().Find("memory-pressure"), nullptr);
  EXPECT_EQ(ScenarioRegistry::Instance().Find("no-such-scenario"), nullptr);
  EXPECT_GE(ScenarioRegistry::Instance().scenarios().size(), 3u);
}

TEST(WorkloadScenarioRegistryTest, ServingScenarioReExpressesTheRequestLoop) {
  ScenarioTuning tuning;
  tuning.num_nodes = 5;
  tuning.horizon = Milliseconds(500);
  tuning.max_object_bytes = MB(1);
  const ScenarioSpec spec = BuildScenario("serving", tuning);
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_EQ(spec.tenants[0].name, "queries");
  EXPECT_EQ(spec.tenants[1].name, "votes");

  const LoadReport report = RunScenario(spec, BackendKind::kHoplite);
  EXPECT_TRUE(report.all_settled);
  EXPECT_EQ(report.total.failed, 0u);
  EXPECT_GT(report.tenants[0].completed, 0u) << "queries must flow";
  EXPECT_GT(report.tenants[1].completed, 0u) << "votes must flow";
  // Query broadcasts carry ~1 MB to 4 replicas; votes are 1 KB inline
  // objects — the tail must reflect that ordering.
  EXPECT_GT(report.tenants[0].latency.p50, report.tenants[1].latency.p50);
}

TEST(WorkloadScenarioRegistryTest, MemoryPressureDrivesEvictionUnderLoad) {
  ScenarioTuning tuning;
  tuning.num_nodes = 4;
  tuning.horizon = Milliseconds(400);
  tuning.seed = 11;
  ScenarioSpec spec = BuildScenario("memory-pressure", tuning);
  spec.store_capacity_bytes = MB(2);  // tiny stores: force the regime
  const LoadReport report = RunScenario(spec, BackendKind::kHoplite);
  EXPECT_TRUE(report.all_settled);
  EXPECT_EQ(report.total.unsettled, 0u);
  EXPECT_EQ(report.total.failed, 0u)
      << "re-reads must survive eviction via the stale-location retry path";
  EXPECT_GT(report.store.evictions, 0u) << "capacity pressure must evict";
  EXPECT_GT(report.store.peak_used_bytes, spec.store_capacity_bytes)
      << "pinned primaries must overshoot the capacity";
}

}  // namespace
}  // namespace hoplite::workload
