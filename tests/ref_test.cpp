// Tests for the Ref future surface: combinator semantics (Then / WhenAll /
// WhenAny / WithTimeout), failure propagation (killed producers, Delete'd
// objects, timeouts), RAII membership subscriptions, and determinism of a
// ref DAG across runs.
#include "core/ref.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"
#include "task/task_system.h"

namespace hoplite {
namespace {

core::HopliteCluster::Options TestOptions(int nodes) {
  core::HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.failure_detection_delay = Milliseconds(100);
  return options;
}

store::Buffer MakeValue(float v) {
  return store::Buffer::FromValues(std::vector<float>(64 * 1024, v));  // 256 KB
}

// ----------------------------------------------------------------------
// Pure combinator semantics (bare simulator, no cluster).
// ----------------------------------------------------------------------

TEST(RefTest, ThenChainsAndFlattens) {
  sim::Simulator sim;
  RefPromise<int> promise(&sim, ObjectID{});
  std::vector<std::string> order;
  const Ref<std::string> chained =
      promise.ref()
          .Then([&](const int& v) { return v + 1; })
          .Then([&](const int& v) {
            // A continuation returning a ref is flattened.
            return After(sim, Milliseconds(5)).Then([v] { return std::to_string(v); });
          });
  chained.Then([&](const std::string& s) { order.push_back(s); });
  EXPECT_FALSE(chained.settled());
  promise.Resolve(41);
  EXPECT_FALSE(chained.settled()) << "inner After must actually wait";
  sim.Run();
  ASSERT_TRUE(chained.ready());
  EXPECT_EQ(chained.value(), "42");
  EXPECT_EQ(order, (std::vector<std::string>{"42"}));
  EXPECT_EQ(sim.Now(), Milliseconds(5));
}

TEST(RefTest, ContinuationsFireInAttachOrderAndInline) {
  sim::Simulator sim;
  RefPromise<int> promise(&sim, ObjectID{});
  std::vector<int> order;
  promise.ref().Then([&](const int&) { order.push_back(1); });
  promise.ref().Then([&](const int&) { order.push_back(2); });
  promise.Resolve(0);
  // Inline: no simulator step was needed.
  promise.ref().Then([&](const int&) { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RefTest, ErrorSkipsThenAndPropagatesDownChains) {
  sim::Simulator sim;
  RefPromise<int> promise(&sim, ObjectID{});
  bool then_ran = false;
  std::optional<RefError> seen;
  promise.ref()
      .Then([&](const int&) {
        then_ran = true;
        return 1;
      })
      .Then([&](const int&) { then_ran = true; })
      .OnError([&](const RefError& error) { seen = error; });
  promise.Reject(RefError{RefErrorCode::kProducerLost, "gone"});
  EXPECT_FALSE(then_ran);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->code, RefErrorCode::kProducerLost);
  EXPECT_EQ(seen->message, "gone");
}

TEST(RefTest, SettleIsFirstWinsIdempotent) {
  sim::Simulator sim;
  RefPromise<int> promise(&sim, ObjectID{});
  promise.Resolve(1);
  promise.Resolve(2);
  promise.Reject(RefError{RefErrorCode::kTimeout, "late"});
  ASSERT_TRUE(promise.ref().ready());
  EXPECT_EQ(promise.ref().value(), 1);
}

TEST(RefTest, WhenAllPreservesInputOrderAndRejectsOnFirstError) {
  sim::Simulator sim;
  std::vector<RefPromise<int>> promises;
  std::vector<Ref<int>> refs;
  for (int i = 0; i < 3; ++i) {
    promises.emplace_back(&sim, ObjectID{});
    refs.push_back(promises.back().ref());
  }
  const Ref<std::vector<int>> all = WhenAll(refs);
  promises[2].Resolve(30);
  promises[0].Resolve(10);
  EXPECT_FALSE(all.settled());
  promises[1].Resolve(20);
  ASSERT_TRUE(all.ready());
  EXPECT_EQ(all.value(), (std::vector<int>{10, 20, 30}));  // input order

  std::vector<RefPromise<int>> failing{{&sim, ObjectID{}}, {&sim, ObjectID{}}};
  const auto failed =
      WhenAll(std::vector<Ref<int>>{failing[0].ref(), failing[1].ref()});
  failing[1].Reject(RefError{RefErrorCode::kDeleted, "boom"});
  ASSERT_TRUE(failed.failed());
  EXPECT_EQ(failed.error().code, RefErrorCode::kDeleted);

  EXPECT_TRUE(WhenAll(std::vector<Ref<int>>{}).ready());  // empty resolves now
}

TEST(RefTest, WhenAllSettledCollectsOutcomesInsteadOfRejecting) {
  sim::Simulator sim;
  std::vector<RefPromise<int>> promises;
  std::vector<Ref<int>> refs;
  for (int i = 0; i < 3; ++i) {
    promises.emplace_back(&sim, ObjectID::FromName("settled").WithIndex(i));
    refs.push_back(promises.back().ref());
  }
  const Ref<std::vector<Settled<int>>> all = WhenAllSettled(refs);
  promises[1].Reject(RefError{RefErrorCode::kProducerLost, "dead"});
  promises[2].Resolve(30);
  EXPECT_FALSE(all.settled()) << "must wait for every ref, failures included";
  promises[0].Resolve(10);
  ASSERT_TRUE(all.ready()) << "a failed input must not reject the result";
  const std::vector<Settled<int>>& outcomes = all.value();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].value, 10);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error.code, RefErrorCode::kProducerLost);
  EXPECT_EQ(outcomes[1].id, ObjectID::FromName("settled").WithIndex(1));
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].value, 30);

  EXPECT_TRUE(WhenAllSettled(std::vector<Ref<int>>{}).ready());  // empty resolves now
}

TEST(RefTest, WhenAllSettledOnClusterKeepsCountingPastAFailedGet) {
  // The workload-driver use case: one op's producer dies (its Get times out,
  // per the documented pair-Get-with-timeout contract), and the combinator
  // still reports every other op's outcome instead of rejecting wholesale.
  core::HopliteCluster cluster(TestOptions(4));
  const ObjectID alive_id = ObjectID::FromName("settled-alive");
  const ObjectID doomed_id = ObjectID::FromName("settled-doomed");
  cluster.client(1).Put(alive_id, MakeValue(1.0F));
  cluster.client(3).Put(doomed_id, MakeValue(2.0F));
  std::vector<Ref<store::Buffer>> gets{
      cluster.client(0).Get(alive_id),
      cluster.client(0).Get(doomed_id, core::GetOptions{.timeout = Milliseconds(500)}),
  };
  const auto settled = WhenAllSettled(gets);
  cluster.simulator().ScheduleAt(Microseconds(10), [&] { cluster.KillNode(3); });
  cluster.RunAll();
  ASSERT_TRUE(settled.ready());
  ASSERT_EQ(settled.value().size(), 2u);
  EXPECT_TRUE(settled.value()[0].ok);
  EXPECT_FALSE(settled.value()[1].ok);
  EXPECT_EQ(settled.value()[1].error.code, RefErrorCode::kTimeout);
}

TEST(RefTest, WhenAnyReturnsIdsInReadinessOrderAndSkipsFailures) {
  sim::Simulator sim;
  std::vector<RefPromise<int>> promises;
  std::vector<Ref<int>> refs;
  for (int i = 0; i < 4; ++i) {
    promises.emplace_back(&sim, ObjectID::FromName("any").WithIndex(i));
    refs.push_back(promises.back().ref());
  }
  const Ref<std::vector<ObjectID>> any = WhenAny(refs, 2);
  promises[3].Resolve(0);
  promises[1].Reject(RefError{RefErrorCode::kProducerLost, "dead"});  // absorbed
  EXPECT_FALSE(any.settled());
  promises[0].Resolve(0);
  ASSERT_TRUE(any.ready());
  EXPECT_EQ(any.value(),
            (std::vector<ObjectID>{ObjectID::FromName("any").WithIndex(3),
                                   ObjectID::FromName("any").WithIndex(0)}));

  // Too many failures to ever reach k: unsatisfiable.
  std::vector<RefPromise<int>> doomed{{&sim, ObjectID{}}, {&sim, ObjectID{}}};
  const auto unsat = WhenAny(std::vector<Ref<int>>{doomed[0].ref(), doomed[1].ref()}, 2);
  doomed[0].Reject(RefError{RefErrorCode::kProducerLost, "dead"});
  ASSERT_TRUE(unsat.failed());
  EXPECT_EQ(unsat.error().code, RefErrorCode::kUnsatisfiable);
}

TEST(RefTest, WithTimeoutFiresAndIsCancelledBySettle) {
  sim::Simulator sim;
  RefPromise<int> never(&sim, ObjectID{});
  const Ref<int> timed_out = never.ref().WithTimeout(Milliseconds(10));
  RefPromise<int> quick(&sim, ObjectID{});
  const Ref<int> in_time = quick.ref().WithTimeout(Milliseconds(10));
  sim.ScheduleAt(Milliseconds(2), [&] { quick.Resolve(7); });
  sim.Run();
  ASSERT_TRUE(timed_out.failed());
  EXPECT_EQ(timed_out.error().code, RefErrorCode::kTimeout);
  ASSERT_TRUE(in_time.ready());
  EXPECT_EQ(in_time.value(), 7);
  // The satisfied mirror's timer was cancelled; only the unsatisfied one's
  // timer advanced the clock.
  EXPECT_EQ(sim.Now(), Milliseconds(10));
  EXPECT_TRUE(sim.Idle());
}

// ----------------------------------------------------------------------
// Failure propagation on the cluster (satellite: combinator semantics
// under failure).
// ----------------------------------------------------------------------

TEST(RefFailureTest, WhenAllFailsWhenProducerKilledMidStream) {
  core::HopliteCluster cluster(TestOptions(4));
  task::TaskSystem tasks(cluster,
                         task::TaskSystemOptions{.lineage_reconstruction = false});
  std::vector<Ref<ObjectID>> outputs;
  for (int i = 0; i < 3; ++i) {
    outputs.push_back(tasks.Submit(task::TaskSpec{
        .name = "producer",
        .compute_time = Milliseconds(50),
        .body = [](const auto&) { return MakeValue(1); },
        .pinned_node = static_cast<NodeID>(i),
    }));
  }
  const auto all = WhenAll(outputs);
  std::optional<SimTime> failed_at;
  all.OnError([&](const RefError&) { failed_at = cluster.Now(); });
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(all.failed());
  EXPECT_EQ(all.error().code, RefErrorCode::kProducerLost);
  ASSERT_TRUE(failed_at.has_value());
  // The failure becomes observable exactly one detection delay after the
  // kill — not at the kill instant (nobody can know yet), not never.
  EXPECT_EQ(*failed_at, Milliseconds(10) + Milliseconds(100));
  // The surviving producers still resolve.
  EXPECT_TRUE(outputs[0].ready());
  EXPECT_TRUE(outputs[2].ready());
  EXPECT_TRUE(outputs[1].failed());
}

TEST(RefFailureTest, LostProducerCascadesToDependentTasks) {
  core::HopliteCluster cluster(TestOptions(2));
  task::TaskSystem tasks(cluster,
                         task::TaskSystemOptions{.lineage_reconstruction = false});
  const Ref<ObjectID> producer = tasks.Submit(task::TaskSpec{
      .name = "producer",
      .compute_time = Milliseconds(50),
      .body = [](const auto&) { return MakeValue(1); },
      .pinned_node = 1,
  });
  const Ref<ObjectID> consumer = tasks.Submit(task::TaskSpec{
      .name = "consumer",
      .args = {producer.id()},
      .compute_time = Milliseconds(5),
      .body = [](const auto& args) { return args[0]; },
      .pinned_node = 0,
  });
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(producer.failed());
  ASSERT_TRUE(consumer.failed()) << "a task consuming a lost output must not hang";
  EXPECT_EQ(consumer.error().code, RefErrorCode::kProducerLost);
}

TEST(RefFailureTest, WhenAnyRacesRecoveryAndStillResolves) {
  core::HopliteCluster cluster(TestOptions(4));
  task::TaskSystem tasks(cluster);  // lineage reconstruction ON
  std::vector<Ref<ObjectID>> outputs;
  for (int i = 0; i < 4; ++i) {
    outputs.push_back(tasks.Submit(task::TaskSpec{
        .name = "rollout",
        .compute_time = Milliseconds(40 + 10 * i),
        .body = [](const auto&) { return MakeValue(2); },
        .pinned_node = static_cast<NodeID>(i),
    }));
  }
  // Kill the node running the fastest task mid-compute; it recovers later
  // and the task re-executes from lineage. WhenAny must settle with the
  // first 3 *actual* finishers, never a dead task's id.
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.KillNode(0); });
  cluster.simulator().ScheduleAt(Milliseconds(500), [&] { cluster.RecoverNode(0); });
  const auto any = WhenAny(outputs, 3);
  cluster.RunAll();
  ASSERT_TRUE(any.ready());
  EXPECT_EQ(any.value(), (std::vector<ObjectID>{outputs[1].id(), outputs[2].id(),
                                                outputs[3].id()}));
  // The recovered task eventually resolves too (no rejection with lineage).
  EXPECT_TRUE(outputs[0].ready());
}

TEST(RefFailureTest, ThenChainedOffDeletedObjectObservesError) {
  core::HopliteCluster cluster(TestOptions(3));
  const ObjectID id = ObjectID::FromName("doomed");
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(64)));
  bool then_ran = false;
  std::optional<RefError> seen;
  cluster.client(1)
      .Get(id)
      .Then([&](const store::Buffer&) { then_ran = true; })
      .OnError([&](const RefError& error) { seen = error; });
  // Delete mid-transfer: the pending Get fails with kDeleted instead of
  // silently never firing.
  cluster.simulator().ScheduleAt(Milliseconds(5), [&] { cluster.client(2).Delete(id); });
  cluster.RunAll();
  EXPECT_FALSE(then_ran);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->code, RefErrorCode::kDeleted);
  EXPECT_FALSE(cluster.store(1).Contains(id));
}

TEST(RefFailureTest, GetWithTimeoutOnNeverPutObjectWithAllProducersDead) {
  // Table 1's Get(ObjectID, timeout) regression: the object is never Put and
  // every node that could have produced it is dead — without a timeout the
  // claim parks in the directory forever.
  core::HopliteCluster cluster(TestOptions(3));
  cluster.KillNode(1);
  cluster.KillNode(2);
  cluster.simulator().RunUntil(Milliseconds(300));
  std::optional<RefError> seen;
  SimTime failed_at = 0;
  const SimTime issued_at = cluster.Now();
  cluster.client(0)
      .Get(ObjectID::FromName("never-put"), core::GetOptions{.timeout = Seconds(1)})
      .OnError([&](const RefError& error) {
        seen = error;
        failed_at = cluster.Now();
      });
  cluster.RunAll();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->code, RefErrorCode::kTimeout);
  EXPECT_EQ(failed_at, issued_at + Seconds(1));
}

TEST(RefFailureTest, KilledNodesOwnRefsFailAtDetectionTime) {
  core::HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("big");
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(256)));
  std::optional<SimTime> failed_at;
  const auto get = cluster.client(1).Get(id);
  get.OnError([&](const RefError& error) {
    EXPECT_EQ(error.code, RefErrorCode::kProducerLost);
    failed_at = cluster.Now();
  });
  // Kill the *getter* long before the 256 MB transfer can finish.
  cluster.simulator().ScheduleAt(Milliseconds(1), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(failed_at.has_value());
  EXPECT_EQ(*failed_at, Milliseconds(1) + Milliseconds(100));
}

TEST(RefFailureTest, CascadeFreesTheWorkerSlotOfADoomedConsumer) {
  // A consumer wedged on a lost argument must release its worker when its
  // ref is failed — otherwise one lost producer wedges the scheduler.
  core::HopliteCluster cluster(TestOptions(2));
  task::TaskSystem tasks(cluster, task::TaskSystemOptions{
                                      .workers_per_node = 1,
                                      .lineage_reconstruction = false});
  const Ref<ObjectID> producer = tasks.Submit(task::TaskSpec{
      .name = "producer",
      .compute_time = Milliseconds(50),
      .body = [](const auto&) { return MakeValue(1); },
      .pinned_node = 1,
  });
  const Ref<ObjectID> consumer = tasks.Submit(task::TaskSpec{
      .name = "consumer",
      .args = {producer.id()},
      .compute_time = Milliseconds(1),
      .body = [](const auto& args) { return args[0]; },
      .pinned_node = 0,
  });
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(consumer.failed());
  // Node 0's only worker slot must be free again: an unrelated task pinned
  // there still runs to completion.
  const Ref<ObjectID> unrelated = tasks.Submit(task::TaskSpec{
      .name = "unrelated",
      .compute_time = Milliseconds(1),
      .body = [](const auto&) { return MakeValue(3); },
      .pinned_node = 0,
  });
  cluster.RunAll();
  ASSERT_TRUE(unrelated.ready());
  EXPECT_EQ(tasks.tasks_executed(), 1u);
}

TEST(RefFailureTest, FinishedOutputWhoseSoleCopyDiesFailsLaterConsumers) {
  // Reconstruction off: the producer *completed* on node 1 and its (non-
  // inline) output lived only there. After node 1 dies, a consumer of that
  // output — submitted after the death — must fail fast, not park forever.
  core::HopliteCluster cluster(TestOptions(2));
  task::TaskSystem tasks(cluster,
                         task::TaskSystemOptions{.lineage_reconstruction = false});
  const Ref<ObjectID> producer = tasks.Submit(task::TaskSpec{
      .name = "producer",
      .compute_time = Milliseconds(1),
      .body = [](const auto&) { return MakeValue(4); },
      .pinned_node = 1,
  });
  cluster.RunAll();
  ASSERT_TRUE(producer.ready());
  cluster.KillNode(1);
  cluster.RunAll();
  const Ref<ObjectID> consumer = tasks.Submit(task::TaskSpec{
      .name = "consumer",
      .args = {producer.id()},
      .compute_time = Milliseconds(1),
      .body = [](const auto& args) { return args[0]; },
  });
  ASSERT_TRUE(consumer.failed());
  EXPECT_EQ(consumer.error().code, RefErrorCode::kProducerLost);
  // The producer's ref stays ready: the task did run; only the data died.
  EXPECT_TRUE(producer.ready());
}

TEST(RefFailureTest, SubmitAfterProducerLostFailsImmediately) {
  // The cascade must also cover tasks submitted *after* the death: their
  // argument fetch would otherwise park a worker slot forever.
  core::HopliteCluster cluster(TestOptions(2));
  task::TaskSystem tasks(cluster,
                         task::TaskSystemOptions{.lineage_reconstruction = false});
  const Ref<ObjectID> producer = tasks.Submit(task::TaskSpec{
      .name = "producer",
      .compute_time = Milliseconds(50),
      .body = [](const auto&) { return MakeValue(1); },
      .pinned_node = 1,
  });
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(producer.failed());
  const Ref<ObjectID> late_consumer = tasks.Submit(task::TaskSpec{
      .name = "late-consumer",
      .args = {producer.id()},
      .compute_time = Milliseconds(1),
      .body = [](const auto& args) { return args[0]; },
  });
  ASSERT_TRUE(late_consumer.failed());
  EXPECT_EQ(late_consumer.error().code, RefErrorCode::kProducerLost);
  cluster.RunAll();
  // The doomed task never ran (and never occupied a worker).
  EXPECT_EQ(tasks.tasks_executed(), 0u);
}

TEST(RefFailureTest, BackToBackDeathsRejectEachIncarnationsRefsSeparately) {
  // kill -> recover -> kill inside one detection window: each incarnation's
  // refs must fail at *its own* death's observation instant, not the first.
  core::HopliteCluster cluster(TestOptions(2));
  std::optional<SimTime> first_failed_at;
  std::optional<SimTime> second_failed_at;
  const auto first = cluster.client(1).Get(ObjectID::FromName("never-a"));
  first.OnError([&](const RefError&) { first_failed_at = cluster.Now(); });
  cluster.KillNode(1);  // observed at 100 ms
  cluster.simulator().ScheduleAt(Milliseconds(50), [&] { cluster.RecoverNode(1); });
  cluster.simulator().ScheduleAt(Milliseconds(60), [&] {
    cluster.client(1).Get(ObjectID::FromName("never-b")).OnError([&](const RefError&) {
      second_failed_at = cluster.Now();
    });
  });
  cluster.simulator().ScheduleAt(Milliseconds(70), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(first_failed_at.has_value());
  ASSERT_TRUE(second_failed_at.has_value());
  EXPECT_EQ(*first_failed_at, Milliseconds(100));
  EXPECT_EQ(*second_failed_at, Milliseconds(70) + Milliseconds(100));
}

TEST(RefFailureTest, RecoveredIncarnationRefsAreNotSweptByOldDeath) {
  // Kill a node, recover it before the detection delay elapses, and issue a
  // fresh Get from the new incarnation: the delayed death observation must
  // fail only the old incarnation's refs.
  core::HopliteCluster cluster(TestOptions(2));
  const ObjectID id = ObjectID::FromName("x");
  cluster.client(0).Put(id, store::Buffer::OfSize(MB(1)));
  cluster.RunAll();
  const auto old_get = cluster.client(1).Get(ObjectID::FromName("never"));
  cluster.KillNode(1);
  cluster.simulator().ScheduleAt(Milliseconds(50), [&] { cluster.RecoverNode(1); });
  std::optional<store::Buffer> fresh_value;
  bool fresh_failed = false;
  cluster.simulator().ScheduleAt(Milliseconds(60), [&] {
    cluster.client(1)
        .Get(id)
        .Then([&](const store::Buffer& b) { fresh_value = b; })
        .OnError([&](const RefError&) { fresh_failed = true; });
  });
  cluster.RunAll();
  EXPECT_TRUE(old_get.failed());
  EXPECT_FALSE(fresh_failed);
  ASSERT_TRUE(fresh_value.has_value());
  EXPECT_EQ(fresh_value->size(), MB(1));
}

// ----------------------------------------------------------------------
// RAII membership subscriptions (satellite).
// ----------------------------------------------------------------------

TEST(MembershipSubscriptionTest, DroppedHandleStopsNotifications) {
  core::HopliteCluster cluster(TestOptions(3));
  int outer_events = 0;
  int inner_events = 0;
  const auto outer = cluster.AddMembershipListener(
      [&](NodeID, bool) { ++outer_events; });
  {
    const auto inner = cluster.AddMembershipListener(
        [&](NodeID, bool) { ++inner_events; });
    cluster.KillNode(1);
    cluster.RunAll();
    EXPECT_EQ(inner_events, 1);
  }
  // The inner observer died before the cluster: its std::function is gone,
  // so this kill must not touch it (the pre-RAII API left it dangling).
  cluster.KillNode(2);
  cluster.RunAll();
  EXPECT_EQ(inner_events, 1);
  EXPECT_EQ(outer_events, 2);
}

TEST(MembershipSubscriptionTest, TaskSystemUnsubscribesOnDestruction) {
  core::HopliteCluster cluster(TestOptions(2));
  {
    task::TaskSystem tasks(cluster);
    tasks.Submit(task::TaskSpec{
        .name = "noop",
        .compute_time = Milliseconds(1),
        .body = [](const auto&) { return MakeValue(0); },
    });
    cluster.RunAll();
  }
  // The TaskSystem is gone; a membership change must not call into it.
  cluster.KillNode(1);
  cluster.RunAll();
  cluster.RecoverNode(1);
  cluster.RunAll();
}

TEST(MembershipSubscriptionTest, HandleIsMovable) {
  core::HopliteCluster cluster(TestOptions(2));
  int events = 0;
  auto a = cluster.AddMembershipListener([&](NodeID, bool) { ++events; });
  auto b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  b.Reset();
  EXPECT_FALSE(b.active());
  cluster.KillNode(1);
  cluster.RunAll();
  EXPECT_EQ(events, 0);
}

// ----------------------------------------------------------------------
// Determinism: a DAG of 100 refs resolves identically across two runs.
// ----------------------------------------------------------------------

std::vector<std::pair<int, SimTime>> RunRefDag(std::uint64_t seed) {
  core::HopliteCluster cluster(TestOptions(8));
  auto& sim = cluster.simulator();
  Rng rng(seed);
  std::vector<std::pair<int, SimTime>> log;
  std::vector<Ref<store::Buffer>> gets;
  int tag = 0;

  // 30 producers: staggered Puts of varying sizes (some inline-small).
  std::vector<ObjectID> objects;
  for (int i = 0; i < 30; ++i) {
    const ObjectID id = ObjectID::FromName("dag").WithIndex(i);
    objects.push_back(id);
    const NodeID src = static_cast<NodeID>(rng.NextBounded(8));
    const std::int64_t bytes =
        i % 3 == 0 ? KB(1) : MB(1) + static_cast<std::int64_t>(rng.NextBounded(8)) * MB(1);
    At(sim, Milliseconds(static_cast<std::int64_t>(rng.NextBounded(20))))
        .Then([&cluster, src, id, bytes] {
          cluster.client(src).Put(id, store::Buffer::OfSize(bytes));
        });
  }
  // 50 consumers: Gets with Then chains from random nodes.
  for (int i = 0; i < 50; ++i) {
    const ObjectID id = objects[rng.NextBounded(objects.size())];
    const NodeID dst = static_cast<NodeID>(rng.NextBounded(8));
    const int this_tag = tag++;
    gets.push_back(cluster.client(dst)
                       .Get(id, core::GetOptions{.read_only = i % 2 == 0})
                       .Then([&log, &cluster, this_tag](const store::Buffer& b) {
                         log.emplace_back(this_tag, cluster.Now());
                         return b;
                       }));
  }
  // 10 WhenAll groups and 10 WhenAny groups over random windows of the gets.
  for (int i = 0; i < 10; ++i) {
    const std::size_t start = rng.NextBounded(gets.size() - 5);
    const std::vector<Ref<store::Buffer>> window(gets.begin() + start,
                                                 gets.begin() + start + 5);
    const int all_tag = tag++;
    WhenAll(window).Then([&log, &cluster, all_tag] {
      log.emplace_back(all_tag, cluster.Now());
    });
    const int any_tag = tag++;
    WhenAny(window, 2).Then([&log, &cluster, any_tag] {
      log.emplace_back(any_tag, cluster.Now());
    });
  }
  cluster.RunAll();
  EXPECT_EQ(log.size(), 50u + 20u);
  return log;
}

TEST(RefDeterminismTest, HundredRefDagResolvesIdenticallyAcrossRuns) {
  const auto first = RunRefDag(17);
  const auto second = RunRefDag(17);
  EXPECT_EQ(first, second);
  // And a different seed actually changes the schedule (the test is live).
  EXPECT_NE(first, RunRefDag(18));
}

}  // namespace
}  // namespace hoplite
