// Integration tests for the application workload models: completion,
// sanity of reported metrics, and the qualitative orderings the paper's
// evaluation depends on (Hoplite > Ray, Gloo ring > Hoplite on sync, etc.).
#include <gtest/gtest.h>

#include "apps/async_sgd.h"
#include "apps/rl.h"
#include "apps/serving.h"
#include "apps/sync_training.h"
#include "common/units.h"

namespace hoplite::apps {
namespace {

AsyncSgdOptions SgdBase(Backend backend) {
  AsyncSgdOptions options;
  options.backend = backend;
  options.num_nodes = 8;
  options.model_bytes = MB(97);  // ResNet-50
  options.gradient_compute = ComputeModel{Milliseconds(150), 0.2};
  options.rounds = 6;
  return options;
}

TEST(AsyncSgdTest, HopliteCompletesAllRounds) {
  const auto result = RunAsyncSgd(SgdBase(Backend::kHoplite));
  EXPECT_EQ(result.rounds_completed, 6);
  EXPECT_EQ(result.round_latencies_s.size(), 6u);
  EXPECT_GT(result.samples_per_second, 0);
}

TEST(AsyncSgdTest, RayCompletesAllRounds) {
  const auto result = RunAsyncSgd(SgdBase(Backend::kRay));
  EXPECT_EQ(result.rounds_completed, 6);
  EXPECT_GT(result.samples_per_second, 0);
}

TEST(AsyncSgdTest, HopliteBeatsRay) {
  const auto hoplite = RunAsyncSgd(SgdBase(Backend::kHoplite));
  const auto ray = RunAsyncSgd(SgdBase(Backend::kRay));
  EXPECT_GT(hoplite.samples_per_second, 2.0 * ray.samples_per_second)
      << "Figure 9 expects a multi-x speedup";
}

TEST(AsyncSgdTest, SpeedupGrowsWithModelSize) {
  auto small = SgdBase(Backend::kHoplite);
  small.model_bytes = MB(97);
  auto small_ray = SgdBase(Backend::kRay);
  small_ray.model_bytes = MB(97);
  auto big = SgdBase(Backend::kHoplite);
  big.model_bytes = MB(233);  // AlexNet: comm-heavier for the same compute
  big.gradient_compute = ComputeModel{Milliseconds(60), 0.2};
  auto big_ray = SgdBase(Backend::kRay);
  big_ray.model_bytes = MB(233);
  big_ray.gradient_compute = ComputeModel{Milliseconds(60), 0.2};
  const double small_speedup = RunAsyncSgd(small).samples_per_second /
                               RunAsyncSgd(small_ray).samples_per_second;
  const double big_speedup =
      RunAsyncSgd(big).samples_per_second / RunAsyncSgd(big_ray).samples_per_second;
  EXPECT_GT(big_speedup, small_speedup)
      << "the more communication-bound model must gain more (Figure 9)";
}

TEST(AsyncSgdTest, FailureRunProducesLatencySpikesAndRecovers) {
  auto options = SgdBase(Backend::kHoplite);
  options.num_nodes = 7;  // 6 workers, like §5.5
  options.rounds = 20;
  options.kill_node = 3;
  options.kill_at = Seconds(2);
  options.recover_at = Seconds(6);
  const auto result = RunAsyncSgd(options);
  EXPECT_EQ(result.rounds_completed, 20);
  // All rounds completed despite the failure; latencies stay finite.
  for (const double latency : result.round_latencies_s) {
    EXPECT_GT(latency, 0);
    EXPECT_LT(latency, 10.0);
  }
}

TEST(AsyncSgdTest, RayFailureRunCompletes) {
  auto options = SgdBase(Backend::kRay);
  options.num_nodes = 7;
  options.rounds = 20;
  options.kill_node = 3;
  options.kill_at = Seconds(2);
  options.recover_at = Seconds(10);
  options.detection_delay = Milliseconds(580);
  const auto result = RunAsyncSgd(options);
  EXPECT_EQ(result.rounds_completed, 20);
}

TEST(RlTest, ImpalaHopliteBeatsRay) {
  RlOptions options;
  options.mode = RlMode::kSamplesOptimization;
  options.num_nodes = 8;
  options.rollout_compute = ComputeModel{Milliseconds(200), 0.3};
  options.update_compute = ComputeModel{Milliseconds(30), 0.1};
  options.rounds = 6;
  options.backend = Backend::kHoplite;
  const auto hoplite = RunRl(options);
  options.backend = Backend::kRay;
  const auto ray = RunRl(options);
  EXPECT_EQ(hoplite.rounds_completed, 6);
  EXPECT_EQ(ray.rounds_completed, 6);
  EXPECT_GT(hoplite.samples_per_second, ray.samples_per_second);
}

TEST(RlTest, A3cHopliteBeatsRay) {
  RlOptions options;
  options.mode = RlMode::kGradientsOptimization;
  options.num_nodes = 8;
  options.rollout_compute = ComputeModel{Milliseconds(200), 0.3};
  options.update_compute = ComputeModel{Milliseconds(30), 0.1};
  options.rounds = 6;
  options.backend = Backend::kHoplite;
  const auto hoplite = RunRl(options);
  options.backend = Backend::kRay;
  const auto ray = RunRl(options);
  EXPECT_GT(hoplite.samples_per_second, 1.5 * ray.samples_per_second);
}

TEST(ServingTest, HopliteBeatsRayAndScalesWithReplicas) {
  ServingOptions options;
  options.num_queries = 15;
  options.inference_compute = ComputeModel{Milliseconds(40), 0.1};
  options.num_nodes = 9;
  options.backend = Backend::kHoplite;
  const auto hoplite8 = RunServing(options);
  options.backend = Backend::kRay;
  const auto ray8 = RunServing(options);
  options.num_nodes = 17;
  const auto ray16 = RunServing(options);
  options.backend = Backend::kHoplite;
  const auto hoplite16 = RunServing(options);
  EXPECT_EQ(hoplite8.queries_completed, 15);
  EXPECT_GT(hoplite8.queries_per_second, ray8.queries_per_second);
  // The gap widens with more replicas (Figure 11: 2.2x at 8, 3.3x at 16).
  const double gap8 = hoplite8.queries_per_second / ray8.queries_per_second;
  const double gap16 = hoplite16.queries_per_second / ray16.queries_per_second;
  EXPECT_GT(gap16, gap8);
}

TEST(ServingTest, FailureRunRecordsTimelineAndRecovers) {
  ServingOptions options;
  options.backend = Backend::kHoplite;
  options.num_nodes = 9;
  options.num_queries = 40;
  options.inference_compute = ComputeModel{Milliseconds(40), 0.1};
  options.kill_node = 4;
  options.kill_at = Seconds(2);
  options.recover_at = Seconds(5);
  const auto result = RunServing(options);
  EXPECT_EQ(result.queries_completed, 40);
  EXPECT_EQ(result.query_latencies_s.size(), 40u);
  // Exactly one query absorbs the detection delay.
  int spikes = 0;
  for (const double latency : result.query_latencies_s) {
    if (latency > 0.5) ++spikes;
  }
  EXPECT_EQ(spikes, 1);
}

TEST(SyncTrainingTest, AllBackendsComplete) {
  SyncTrainingOptions options;
  options.num_nodes = 8;
  options.model_bytes = MB(97);
  options.gradient_compute = ComputeModel{Milliseconds(150), 0.05};
  options.rounds = 4;
  for (const Backend backend :
       {Backend::kHoplite, Backend::kMpi, Backend::kGloo, Backend::kRay}) {
    options.backend = backend;
    const auto result = RunSyncTraining(options);
    EXPECT_EQ(result.rounds_completed, 4) << BackendName(backend);
    EXPECT_GT(result.samples_per_second, 0) << BackendName(backend);
  }
}

TEST(SyncTrainingTest, PaperOrderingHolds) {
  // Figure 13: Gloo (ring) >= Hoplite ~ OpenMPI >> Ray; Hoplite within
  // ~12-24% of Gloo at the paper's compute/communication balance (GPU
  // compute a large fraction of the round).
  SyncTrainingOptions options;
  options.num_nodes = 16;
  options.model_bytes = MB(233);
  options.gradient_compute = ComputeModel{Milliseconds(400), 0.05};
  options.rounds = 4;
  auto run = [&](Backend backend) {
    options.backend = backend;
    return RunSyncTraining(options).samples_per_second;
  };
  const double hoplite = run(Backend::kHoplite);
  const double mpi = run(Backend::kMpi);
  const double gloo = run(Backend::kGloo);
  const double ray = run(Backend::kRay);
  EXPECT_GT(gloo, hoplite) << "ring-allreduce is more bandwidth-efficient (§5.6)";
  EXPECT_GT(hoplite, ray * 1.5);
  // Our OpenMPI model uses the same ring as Gloo for large payloads, so
  // Hoplite sits in the same band relative to both.
  EXPECT_GT(hoplite, mpi * 0.55);
  EXPECT_LT(hoplite, mpi * 1.05);
  // "Hoplite is 12-24% slower than Gloo" on the paper's testbed; our
  // serialized-FIFO NIC model (vs. real TCP fair sharing) costs the
  // reduce+broadcast composition a further ~10% — see EXPERIMENTS.md.
  EXPECT_GT(hoplite, gloo * 0.55);
  EXPECT_LT(hoplite, gloo * 0.95);
}

}  // namespace
}  // namespace hoplite::apps
