// Full-sweep determinism differential tests.
//
// 1. Every registered figure runs TWICE in the same process at reduced
//    scale, and the two serialized result documents must be byte-identical
//    once wall-clock content is excluded.
// 2. The same sweep runs with every Hoplite cluster hosted on a
//    ShardedSimulator (RunOptions::shards in {2, 4, 8}) and each document
//    must be byte-identical to the shards=1 reference: the parallel engine
//    is an implementation detail, never a result.
//
// This is the machine-checked form of the determinism contract the linter
// (scripts/lint_determinism.py) enforces statically: same inputs, same
// bytes. Running twice in-process is deliberately harsher than running the
// binary twice — leaked global state (a static counter, a reused id pool, a
// cache warmed by run one) shifts run two even when fresh processes agree.
//
// Wall-clock exclusions mirror the figure-baseline comparison rules:
// the engine-micro figure (wholly wall-clock), rows whose series or unit
// mentions wall time, and per-row wall_seconds coordinates.
#include "bench/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/units.h"

namespace hoplite::bench {
namespace {

RunOptions ReducedScale() {
  RunOptions options;
  options.max_nodes = 8;
  options.max_object_bytes = MB(4);
  options.repeats = 1;
  options.rounds = 2;
  return options;
}

bool IsWallRow(const Row& row) {
  return row.series.find("wall") != std::string::npos ||
         row.unit.find("wall") != std::string::npos;
}

Row StripWallCoords(Row row) {
  row.coords.erase(std::remove_if(row.coords.begin(), row.coords.end(),
                                  [](const auto& coord) {
                                    return coord.first.find("wall") != std::string::npos;
                                  }),
                   row.coords.end());
  return row;
}

// Runs every figure under `options` but serializes under `serialize_as`,
// so sweeps that differ only in engine configuration (shards) produce
// comparable documents.
std::string SweepJson(const RunOptions& options, const RunOptions& serialize_as) {
  std::vector<FigureResult> results;
  for (const Figure& figure : Registry::Instance().figures()) {
    if (figure.name == "engine-micro") continue;  // wholly wall-clock
    std::vector<Row> rows;
    for (Row& row : figure.fn(options)) {
      if (IsWallRow(row)) continue;
      rows.push_back(StripWallCoords(std::move(row)));
    }
    results.push_back(FigureResult{figure.name, figure.title, std::move(rows)});
  }
  return ResultsToJson(results, serialize_as);
}

std::string SweepJson(const RunOptions& options) { return SweepJson(options, options); }

void ExpectSameDocument(const std::string& first, const std::string& second,
                        const std::string& what) {
  if (first == second) return;
  // Report the first divergence with context instead of dumping megabytes.
  std::size_t at = 0;
  while (at < first.size() && at < second.size() && first[at] == second[at]) ++at;
  const std::size_t from = at < 60 ? 0 : at - 60;
  FAIL() << what << ": sweep documents diverge at byte " << at << " (sizes "
         << first.size() << " vs " << second.size() << ")\n  run 1: ..."
         << first.substr(from, 120) << "\n  run 2: ..." << second.substr(from, 120);
}

TEST(SweepDeterminismTest, FullSweepTwiceInProcessIsByteIdentical) {
  ASSERT_EQ(Registry::Instance().figures().size(), 22u);
  const RunOptions options = ReducedScale();
  const std::string first = SweepJson(options);
  const std::string second = SweepJson(options);
  ASSERT_FALSE(first.empty());
  ExpectSameDocument(first, second, "reference engine, run 1 vs run 2");
}

TEST(SweepDeterminismTest, ShardedSweepsReproduceTheReferenceByteIdentically) {
  const RunOptions reference = ReducedScale();
  const std::string baseline = SweepJson(reference);
  ASSERT_FALSE(baseline.empty());
  for (const int shards : {2, 4, 8}) {
    RunOptions sharded = reference;
    sharded.shards = shards;
    ExpectSameDocument(baseline, SweepJson(sharded, reference),
                       "shards=" + std::to_string(shards) + " vs reference");
  }
}

}  // namespace
}  // namespace hoplite::bench
