// Full-sweep determinism differential test: every registered figure runs
// TWICE in the same process at reduced scale, and the two serialized result
// documents must be byte-identical once wall-clock content is excluded.
//
// This is the machine-checked form of the determinism contract the linter
// (scripts/lint_determinism.py) enforces statically: same inputs, same
// bytes. Running twice in-process is deliberately harsher than running the
// binary twice — leaked global state (a static counter, a reused id pool, a
// cache warmed by run one) shifts run two even when fresh processes agree.
//
// Wall-clock exclusions mirror the figure-baseline comparison rules:
// the engine-micro figure (wholly wall-clock), rows whose series or unit
// mentions wall time, and per-row wall_seconds coordinates.
#include "bench/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/units.h"

namespace hoplite::bench {
namespace {

RunOptions ReducedScale() {
  RunOptions options;
  options.max_nodes = 8;
  options.max_object_bytes = MB(4);
  options.repeats = 1;
  options.rounds = 2;
  return options;
}

bool IsWallRow(const Row& row) {
  return row.series.find("wall") != std::string::npos ||
         row.unit.find("wall") != std::string::npos;
}

Row StripWallCoords(Row row) {
  row.coords.erase(std::remove_if(row.coords.begin(), row.coords.end(),
                                  [](const auto& coord) {
                                    return coord.first.find("wall") != std::string::npos;
                                  }),
                   row.coords.end());
  return row;
}

std::string SweepJson(const RunOptions& options) {
  std::vector<FigureResult> results;
  for (const Figure& figure : Registry::Instance().figures()) {
    if (figure.name == "engine-micro") continue;  // wholly wall-clock
    std::vector<Row> rows;
    for (Row& row : figure.fn(options)) {
      if (IsWallRow(row)) continue;
      rows.push_back(StripWallCoords(std::move(row)));
    }
    results.push_back(FigureResult{figure.name, figure.title, std::move(rows)});
  }
  return ResultsToJson(results, options);
}

TEST(SweepDeterminismTest, FullSweepTwiceInProcessIsByteIdentical) {
  ASSERT_EQ(Registry::Instance().figures().size(), 18u);
  const RunOptions options = ReducedScale();
  const std::string first = SweepJson(options);
  const std::string second = SweepJson(options);
  ASSERT_FALSE(first.empty());
  if (first == second) return;
  // Report the first divergence with context instead of dumping megabytes.
  std::size_t at = 0;
  while (at < first.size() && at < second.size() && first[at] == second[at]) ++at;
  const std::size_t from = at < 60 ? 0 : at - 60;
  FAIL() << "sweep documents diverge at byte " << at << " (sizes " << first.size()
         << " vs " << second.size() << ")\n  run 1: ..."
         << first.substr(from, 120) << "\n  run 2: ..." << second.substr(from, 120);
}

}  // namespace
}  // namespace hoplite::bench
