// Unit tests for the object directory service.
#include "directory/object_directory.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/units.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace hoplite::directory {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : net_(MakeNetwork()), dir_(*net_, DirectoryConfig{}) {}

  std::unique_ptr<net::NetworkModel> MakeNetwork() {
    net::ClusterConfig cfg;
    cfg.num_nodes = 8;
    cfg.per_message_overhead = 0;
    return std::make_unique<net::NetworkModel>(sim_, cfg);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::NetworkModel> net_;
  ObjectDirectory dir_;
  const ObjectID obj_ = ObjectID::FromName("payload");
};

TEST_F(DirectoryTest, RegisterThenQuery) {
  dir_.RegisterPartial(obj_, 2, MB(1));
  sim_.Run();
  EXPECT_TRUE(dir_.HasObject(obj_));
  EXPECT_EQ(dir_.SizeOf(obj_), MB(1));
  EXPECT_EQ(dir_.StateOf(obj_, 2), LocationState::kAvailablePartial);
  EXPECT_EQ(dir_.LocationsOf(obj_), (std::vector<NodeID>{2}));
}

TEST_F(DirectoryTest, WriteLatencyIsCharged) {
  dir_.RegisterPartial(obj_, 2, MB(1));
  EXPECT_FALSE(dir_.HasObject(obj_));  // not yet applied
  sim_.RunUntil(Microseconds(166));
  EXPECT_FALSE(dir_.HasObject(obj_));
  sim_.RunUntil(Microseconds(167));
  EXPECT_TRUE(dir_.HasObject(obj_));
}

TEST_F(DirectoryTest, MarkCompletePromotesLocation) {
  dir_.RegisterPartial(obj_, 2, MB(1));
  dir_.MarkComplete(obj_, 2);
  sim_.Run();
  EXPECT_EQ(dir_.StateOf(obj_, 2), LocationState::kAvailableComplete);
}

TEST_F(DirectoryTest, ClaimGrantsCompleteSenderAndMarksItBusy) {
  dir_.RegisterPartial(obj_, 2, MB(1));
  dir_.MarkComplete(obj_, 2);
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 2);
  EXPECT_TRUE(reply->sender_complete);
  EXPECT_FALSE(reply->inline_payload);
  EXPECT_EQ(reply->object_size, MB(1));
  EXPECT_EQ(reply->sender_chain, (std::vector<NodeID>{2}));
  // Sender is now busy; receiver self-registered as partial.
  EXPECT_EQ(dir_.StateOf(obj_, 2), LocationState::kBusy);
  EXPECT_EQ(dir_.StateOf(obj_, 5), LocationState::kAvailablePartial);
}

TEST_F(DirectoryTest, ClaimPrefersCompleteOverPartial) {
  dir_.RegisterPartial(obj_, 1, MB(1));  // partial
  dir_.RegisterPartial(obj_, 2, MB(1));
  dir_.MarkComplete(obj_, 2);  // complete
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 2);
}

TEST_F(DirectoryTest, SecondClaimFallsBackToPartialCopy) {
  // Mirrors Figure 4b: S is busy sending to R1, so R2 gets R1 (partial).
  dir_.RegisterPartial(obj_, 0, MB(1));
  dir_.MarkComplete(obj_, 0);
  std::optional<ClaimReply> r1;
  std::optional<ClaimReply> r2;
  dir_.ClaimSender(obj_, 1, [&](const ClaimReply& r) { r1 = r; });
  sim_.Run();
  dir_.ClaimSender(obj_, 2, [&](const ClaimReply& r) { r2 = r; });
  sim_.Run();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->sender, 0);
  EXPECT_EQ(r2->sender, 1);  // the partial copy at R1
  EXPECT_FALSE(r2->sender_complete);
  EXPECT_EQ(r2->sender_chain, (std::vector<NodeID>{0, 1}));
}

TEST_F(DirectoryTest, TransferFinishedReturnsSenderToPoolAndCompletesReceiver) {
  dir_.RegisterPartial(obj_, 0, MB(1));
  dir_.MarkComplete(obj_, 0);
  dir_.ClaimSender(obj_, 1, [](const ClaimReply&) {});
  sim_.Run();
  dir_.TransferFinished(obj_, 0, 1);
  sim_.Run();
  EXPECT_EQ(dir_.StateOf(obj_, 0), LocationState::kAvailableComplete);
  EXPECT_EQ(dir_.StateOf(obj_, 1), LocationState::kAvailableComplete);
}

TEST_F(DirectoryTest, ClaimParksUntilObjectAppears) {
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  EXPECT_FALSE(reply.has_value());  // parked
  dir_.RegisterPartial(obj_, 2, MB(1));
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 2);
  EXPECT_FALSE(reply->sender_complete);
}

TEST_F(DirectoryTest, EveryClaimAddsAnAvailablePartialSender) {
  // The claim protocol guarantees the sender pool never empties during a
  // broadcast: each granted receiver immediately becomes an available
  // partial location (this is what builds the dynamic broadcast tree).
  dir_.RegisterPartial(obj_, 0, MB(1));
  dir_.MarkComplete(obj_, 0);
  std::vector<NodeID> granted;
  for (NodeID r = 1; r <= 4; ++r) {
    std::optional<ClaimReply> reply;
    dir_.ClaimSender(obj_, r, [&](const ClaimReply& rep) { reply = rep; });
    sim_.Run();
    ASSERT_TRUE(reply.has_value()) << "receiver " << r << " should never park";
    granted.push_back(reply->sender);
  }
  // Receiver k is granted receiver k-1's partial copy (node 0 then 1, 2, 3).
  EXPECT_EQ(granted, (std::vector<NodeID>{0, 1, 2, 3}));
}

TEST_F(DirectoryTest, ClaimParksWhenOnlySenderIsBusyAndIsServedFifo) {
  dir_.RegisterPartial(obj_, 0, MB(1));
  dir_.MarkComplete(obj_, 0);
  dir_.ClaimSender(obj_, 1, [](const ClaimReply&) {});
  sim_.Run();
  // Node 1's partial copy disappears (e.g. evicted); only busy node 0 left.
  dir_.RemoveLocation(obj_, 1);
  sim_.Run();
  std::optional<ClaimReply> first;
  std::optional<ClaimReply> second;
  dir_.ClaimSender(obj_, 2, [&](const ClaimReply& r) { first = r; });
  sim_.Run();
  EXPECT_FALSE(first.has_value());  // parked: node 0 is busy
  dir_.ClaimSender(obj_, 3, [&](const ClaimReply& r) { second = r; });
  sim_.Run();
  EXPECT_FALSE(second.has_value());
  // The transfer to (now-gone) node 1 finishes: node 0 returns to the pool
  // and the parked claims are served in FIFO order.
  dir_.TransferFinished(obj_, 0, 1);
  sim_.Run();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sender, 0);
  // Receiver 2 self-registered as partial, so receiver 3 fetches from it.
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->sender, 2);
}

TEST_F(DirectoryTest, ClaimNeverGrantsSenderWhoseChainContainsReceiver) {
  // Node 1 fetches from node 0; node 1's chain is {0, 1}... then node 0
  // fails and node 1 re-claims: the only other location is node 2, which is
  // fetching from node 1 (chain {0,1,2} contains 1) — must park, not grant.
  dir_.RegisterPartial(obj_, 0, MB(1));
  dir_.MarkComplete(obj_, 0);
  dir_.ClaimSender(obj_, 1, [](const ClaimReply&) {});
  sim_.Run();
  dir_.ClaimSender(obj_, 2, [](const ClaimReply&) {});  // gets node 1
  sim_.Run();
  ASSERT_EQ(dir_.StateOf(obj_, 1), LocationState::kBusy);
  dir_.NodeFailed(0);
  dir_.TransferAborted(obj_, 0, 1, /*sender_alive=*/false);
  sim_.Run();
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 1, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  EXPECT_FALSE(reply.has_value()) << "cyclic grant: node 2 depends on node 1";
  // When node 2's fetch aborts and its chain clears, node 1 can claim it.
  dir_.TransferAborted(obj_, 1, 2, /*sender_alive=*/true);
  sim_.Run();
  // Note: node 2 kept only a prefix; it serves as a partial sender.
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 2);
}

TEST_F(DirectoryTest, InlineSmallObjectServedFromDirectory) {
  const auto payload = store::Buffer::FromValues({1, 2, 3, 4});
  bool stored = false;
  dir_.PutInline(obj_, 0, payload, [&] { stored = true; });
  sim_.Run();
  EXPECT_TRUE(stored);
  EXPECT_TRUE(dir_.IsInline(obj_));
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->inline_payload);
  EXPECT_EQ(reply->payload.values(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(reply->sender, kInvalidNode);
}

TEST_F(DirectoryTest, ParkedClaimServedWhenInlinePutArrives) {
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  EXPECT_FALSE(reply.has_value());
  dir_.PutInline(obj_, 0, store::Buffer::OfSize(100), nullptr);
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->inline_payload);
  EXPECT_EQ(reply->payload.size(), 100);
}

TEST_F(DirectoryTest, SubscriptionPublishesCurrentAndFutureLocations) {
  dir_.RegisterPartial(obj_, 1, MB(1));
  sim_.Run();
  std::vector<LocationEvent> events;
  dir_.Subscribe(obj_, [&](const LocationEvent& e) { events.push_back(e); });
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_FALSE(events[0].complete);
  dir_.MarkComplete(obj_, 1);
  dir_.RegisterPartial(obj_, 3, MB(1));
  sim_.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[1].complete);
  EXPECT_EQ(events[2].node, 3);
}

TEST_F(DirectoryTest, UnsubscribeStopsEvents) {
  std::vector<LocationEvent> events;
  const auto id = dir_.Subscribe(obj_, [&](const LocationEvent& e) { events.push_back(e); });
  sim_.Run();
  dir_.Unsubscribe(obj_, id);
  dir_.RegisterPartial(obj_, 1, MB(1));
  sim_.Run();
  EXPECT_TRUE(events.empty());
}

TEST_F(DirectoryTest, NodeFailureRemovesLocationsAndPublishesRemoval) {
  dir_.RegisterPartial(obj_, 1, MB(1));
  dir_.RegisterPartial(obj_, 2, MB(1));
  sim_.Run();
  std::vector<LocationEvent> events;
  dir_.Subscribe(obj_, [&](const LocationEvent& e) { events.push_back(e); });
  sim_.Run();
  events.clear();
  dir_.NodeFailed(1);
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].removed);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_EQ(dir_.LocationsOf(obj_), (std::vector<NodeID>{2}));
}

TEST_F(DirectoryTest, DeleteReturnsHoldersAndDropsEntry) {
  dir_.RegisterPartial(obj_, 1, MB(1));
  dir_.RegisterPartial(obj_, 4, MB(1));
  sim_.Run();
  std::optional<std::vector<NodeID>> holders;
  dir_.DeleteObject(obj_, [&](std::vector<NodeID> h) { holders = std::move(h); });
  sim_.Run();
  ASSERT_TRUE(holders.has_value());
  EXPECT_EQ(*holders, (std::vector<NodeID>{1, 4}));
  EXPECT_FALSE(dir_.HasObject(obj_));
}

TEST_F(DirectoryTest, CancelClaimDropsParkedQuery) {
  bool replied = false;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply&) { replied = true; });
  sim_.Run();
  dir_.CancelClaim(obj_, 5);
  dir_.RegisterPartial(obj_, 2, MB(1));
  sim_.Run();
  EXPECT_FALSE(replied);
}

TEST_F(DirectoryTest, ShardIsStableAndInRange) {
  const NodeID shard = dir_.ShardOf(obj_);
  EXPECT_GE(shard, 0);
  EXPECT_LT(shard, 8);
  EXPECT_EQ(dir_.ShardOf(obj_), shard);
}

TEST_F(DirectoryTest, DeleteWhileParkedKeepsTheClaimAlive) {
  // A claim parked behind a missing sender must survive a concurrent
  // Delete: dropping it would strand the claimant's callback forever. The
  // claim resolves once the object is re-created, exactly as if it had been
  // issued after the delete.
  dir_.RegisterPartial(obj_, 2, MB(1));
  sim_.Run();
  int replies = 0;
  NodeID granted = kInvalidNode;
  // Claim the only copy, then re-claim from the same receiver (a client
  // whose first fetch stalled does exactly this): the second claim has no
  // eligible sender — 2 is busy, 5 cannot serve itself — so it parks.
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply&) { ++replies; });
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) {
    ++replies;
    granted = r.sender;
  });
  sim_.Run();
  EXPECT_EQ(replies, 1);
  dir_.DeleteObject(obj_, nullptr);
  sim_.Run();
  // Every copy and the recorded size are gone; the id lives on only as a
  // parking lot (exactly the state a claim-before-put creates).
  EXPECT_EQ(dir_.LocationsOf(obj_), std::vector<NodeID>{});
  EXPECT_EQ(dir_.SizeOf(obj_), std::nullopt);
  EXPECT_EQ(replies, 1) << "parked claim must not be dropped or misfired";
  // Re-create the object: the surviving parked claim is served from it.
  dir_.RegisterPartial(obj_, 3, MB(1));
  dir_.MarkComplete(obj_, 3);
  sim_.Run();
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(granted, 3);
}

TEST_F(DirectoryTest, DeleteWhileClaimInFlightDoesNotResurrectTheEntry) {
  // Delete races a granted (in-flight) claim: the transfer-finished write
  // that lands after the delete must not recreate locations or crash, and
  // the claimant's reply must already have been delivered.
  dir_.RegisterPartial(obj_, 2, MB(1));
  dir_.MarkComplete(obj_, 2);
  sim_.Run();
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 2);
  // The receiver is now a registered partial and the sender is busy; the
  // framework deletes the object while the bytes are still on the wire.
  dir_.DeleteObject(obj_, nullptr);
  sim_.Run();
  EXPECT_FALSE(dir_.HasObject(obj_));
  // The late completion write finds no entry and must be a clean no-op.
  dir_.TransferFinished(obj_, 2, 5);
  sim_.Run();
  EXPECT_FALSE(dir_.HasObject(obj_));
  EXPECT_EQ(dir_.LocationsOf(obj_), std::vector<NodeID>{});
}

TEST_F(DirectoryTest, DeleteWhileClaimReadInFlightParksOnTheFreshEntry) {
  // The claim's read latency straddles the delete: when the read lands the
  // entry is gone, so the claim parks on the fresh entry and resolves when
  // the object reappears.
  dir_.RegisterPartial(obj_, 2, MB(1));
  dir_.MarkComplete(obj_, 2);
  sim_.Run();
  dir_.DeleteObject(obj_, nullptr);  // write latency 167 us < read latency 177 us
  std::optional<ClaimReply> reply;
  dir_.ClaimSender(obj_, 5, [&](const ClaimReply& r) { reply = r; });
  sim_.Run();
  EXPECT_FALSE(reply.has_value()) << "claim must park, not resolve on a deleted copy";
  dir_.RegisterPartial(obj_, 7, MB(1));
  dir_.MarkComplete(obj_, 7);
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, 7);
}

}  // namespace
}  // namespace hoplite::directory
