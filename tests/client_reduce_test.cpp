// Integration tests for the Reduce protocol (§3.4.2) and its fault-tolerance
// behaviour (§3.5.2) on a simulated cluster.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"

namespace hoplite::core {
namespace {

HopliteCluster::Options TestOptions(int nodes, int forced_degree = 0) {
  HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.nic_bandwidth = Gbps(10);
  options.network.one_way_latency = Microseconds(50);
  options.network.per_message_overhead = Microseconds(5);
  options.network.failure_detection_delay = Milliseconds(100);
  options.hoplite.forced_reduce_degree = forced_degree;
  return options;
}

/// A float vector of `n` elements, all equal to `value`.
std::vector<float> Constant(std::size_t n, float value) {
  return std::vector<float>(n, value);
}

/// Puts one valued gradient per node (node i holds value i+1), at the given
/// times, and returns the source ids.
std::vector<ObjectID> PutGradients(HopliteCluster& cluster, std::size_t elements,
                                   const std::vector<SimDuration>& at = {}) {
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < cluster.num_nodes(); ++n) {
    const ObjectID id = ObjectID::FromName("grad").WithIndex(n);
    sources.push_back(id);
    auto do_put = [&cluster, n, id, elements] {
      cluster.client(n).Put(id,
                            store::Buffer::FromValues(Constant(elements, float(n) + 1)));
    };
    if (at.empty()) {
      do_put();
    } else {
      cluster.simulator().ScheduleAt(at[static_cast<std::size_t>(n)], do_put);
    }
  }
  return sources;
}

// The sum of values 1..n.
float SumTo(int n) { return static_cast<float>(n) * (n + 1) / 2.0f; }

class ReduceDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(ReduceDegreeTest, FullReduceSumsAllSources) {
  constexpr int kNodes = 8;
  constexpr std::size_t kElems = 64 * 1024;  // 256 KB objects
  HopliteCluster cluster(TestOptions(kNodes, GetParam()));
  const auto sources = PutGradients(cluster, kElems);
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(0)
      .Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reduced.size(), 8u);
  EXPECT_TRUE(result->unreduced.empty());
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->has_values());
  EXPECT_EQ(value->values()[0], SumTo(kNodes));
  EXPECT_EQ(value->values()[kElems - 1], SumTo(kNodes));
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, ReduceDegreeTest,
                         ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(ReduceTest, SubsetReduceTakesEarliestArrivals) {
  constexpr int kNodes = 8;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  // Node i puts at time i*10ms; reduce 4 of 8 -> earliest four (values 1..4).
  std::vector<SimDuration> at;
  for (int i = 0; i < kNodes; ++i) at.push_back(Milliseconds(10) * i);
  const auto sources = PutGradients(cluster, 64 * 1024, at);
  const ObjectID target = ObjectID::FromName("sum4");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(0)
      .Reduce(ReduceSpec{target, sources, 4, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reduced.size(), 4u);
  EXPECT_EQ(result->unreduced.size(), 4u);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], SumTo(4));  // 1+2+3+4
}

TEST(ReduceTest, ArrivalOrderDoesNotAffectFullSum) {
  constexpr int kNodes = 7;
  Rng rng(2024);
  for (int trial = 0; trial < 5; ++trial) {
    HopliteCluster cluster(TestOptions(kNodes, 2));
    std::vector<SimDuration> at;
    for (int i = 0; i < kNodes; ++i) at.push_back(Milliseconds(5) * i);
    rng.Shuffle(at);
    const auto sources = PutGradients(cluster, 16 * 1024, at);
    const ObjectID target = ObjectID::FromName("t").WithIndex(trial);
    std::optional<store::Buffer> value;
    cluster.client(3).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
    cluster.client(3).Get(target).Then([&](const store::Buffer& b) { value = b; });
    cluster.RunAll();
    ASSERT_TRUE(value.has_value()) << "trial " << trial;
    EXPECT_EQ(value->values()[0], SumTo(kNodes)) << "trial " << trial;
  }
}

TEST(ReduceTest, MinAndMaxOperations) {
  constexpr int kNodes = 4;
  HopliteCluster cluster(TestOptions(kNodes, kNodes));
  const auto sources = PutGradients(cluster, 32 * 1024);
  std::optional<store::Buffer> min_value;
  std::optional<store::Buffer> max_value;
  cluster.client(0).Reduce(
      ReduceSpec{ObjectID::FromName("min"), sources, 0, store::ReduceOp::kMin});
  cluster.client(1).Reduce(
      ReduceSpec{ObjectID::FromName("max"), sources, 0, store::ReduceOp::kMax});
  cluster.client(0).Get(ObjectID::FromName("min")).Then([&](const store::Buffer& b) {
    min_value = b;
  });
  cluster.client(1).Get(ObjectID::FromName("max")).Then([&](const store::Buffer& b) {
    max_value = b;
  });
  cluster.RunAll();
  ASSERT_TRUE(min_value.has_value());
  ASSERT_TRUE(max_value.has_value());
  EXPECT_EQ(min_value->values()[0], 1.0f);
  EXPECT_EQ(max_value->values()[0], 4.0f);
}

TEST(ReduceTest, SingleSourceReduceIsACopy) {
  HopliteCluster cluster(TestOptions(2));
  const ObjectID src = ObjectID::FromName("only");
  cluster.client(1).Put(src, store::Buffer::FromValues(Constant(65536, 7.0f)));
  const ObjectID target = ObjectID::FromName("copy");
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{target, {src}, 0, store::ReduceOp::kSum});
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], 7.0f);
}

TEST(ReduceTest, SmallObjectsUseInlineFastPath) {
  constexpr int kNodes = 6;
  HopliteCluster cluster(TestOptions(kNodes));
  const auto sources = PutGradients(cluster, 64);  // 256 B objects -> inline
  const ObjectID target = ObjectID::FromName("tinysum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(2)
      .Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(2).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reduced.size(), 6u);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], SumTo(kNodes));
  // The result itself went inline: no store entry for it.
  EXPECT_TRUE(cluster.directory().IsInline(target));
}

TEST(ReduceTest, ChainedReducePipelinesThroughIntermediateTarget) {
  // reduce(grads[0..3]) -> partial; reduce({partial, grads[4..7]}) -> total.
  constexpr int kNodes = 8;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  const auto sources = PutGradients(cluster, 64 * 1024);
  const ObjectID partial = ObjectID::FromName("partial");
  const ObjectID total = ObjectID::FromName("total");
  std::vector<ObjectID> first(sources.begin(), sources.begin() + 4);
  std::vector<ObjectID> second{partial};
  second.insert(second.end(), sources.begin() + 4, sources.end());
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{partial, first, 0, store::ReduceOp::kSum});
  cluster.client(0).Reduce(ReduceSpec{total, second, 0, store::ReduceOp::kSum});
  cluster.client(0).Get(total).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], SumTo(kNodes));
}

TEST(ReduceTest, AllReduceViaReduceThenBroadcast) {
  constexpr int kNodes = 8;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  const auto sources = PutGradients(cluster, 64 * 1024);
  const ObjectID target = ObjectID::FromName("allreduce");
  int got = 0;
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  for (NodeID n = 0; n < kNodes; ++n) {
    cluster.client(n).Get(target).Then([&, n](const store::Buffer& b) {
      EXPECT_EQ(b.values()[0], SumTo(kNodes)) << "node " << n;
      ++got;
    });
  }
  cluster.RunAll();
  EXPECT_EQ(got, kNodes);
}

TEST(ReduceTest, AdaptiveDegreePicksStarForSmallStoreObjects) {
  // 128 KB objects: above the inline threshold but S/B << L*log(n).
  constexpr int kNodes = 8;
  HopliteCluster cluster(TestOptions(kNodes, /*forced=*/0));
  const auto sources = PutGradients(cluster, 32 * 1024);  // 128 KB
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], SumTo(kNodes));
}

TEST(ReduceTest, ChainReduceLatencyNearBandwidthBound) {
  // d=1 over n nodes with pipelining: ~ n*L + S/B, NOT n*S/B (§3.4.2).
  constexpr int kNodes = 8;
  HopliteCluster cluster(TestOptions(kNodes, 1));
  const std::int64_t size = MB(256);
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < kNodes; ++n) {
    const ObjectID id = ObjectID::FromName("g").WithIndex(n);
    sources.push_back(id);
    cluster.client(n).Put(id, store::Buffer::OfSize(size));
  }
  const ObjectID target = ObjectID::FromName("sum");
  SimTime start = 0;
  SimTime done = 0;
  start = cluster.Now();
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  cluster.client(0)
      .Get(target, GetOptions{.read_only = true})
      .Then([&](const store::Buffer& b) {
        value = b;
        done = cluster.Now();
      });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value());
  const double bound = ToSeconds(TransferTime(size, Gbps(10)));
  EXPECT_LT(ToSeconds(done - start), bound * 1.3)
      << "chain reduce should pay the bandwidth term roughly once";
  EXPECT_GT(ToSeconds(done - start), bound);
}

// ----------------------------------------------------------------------
// Fault tolerance (§3.5.2)
// ----------------------------------------------------------------------

TEST(ReduceFaultTest, FailedLeafIsReplacedByNextReadyObject) {
  // 10 sources, reduce 6. Kill one of the 6 earliest mid-reduce; one of the
  // 4 spares must take its position and the sum must reflect the final tree.
  constexpr int kNodes = 10;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  constexpr std::size_t kElems = 1024 * 1024;  // 4 MB objects
  std::vector<SimDuration> at;
  for (int i = 0; i < kNodes; ++i) at.push_back(Milliseconds(20) * i);
  const auto sources = PutGradients(cluster, kElems, at);
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  // Start the reduce at t=0; first 6 arrivals are nodes 0..5.
  cluster.client(0)
      .Reduce(ReduceSpec{target, sources, 6, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  // Kill node 3 after its object arrived but before the reduce can finish
  // (node 9 only puts at 180 ms, so the tree is still waiting).
  cluster.simulator().ScheduleAt(Milliseconds(70), [&] { cluster.KillNode(3); });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(result->reduced.size(), 6u);
  // Node 3's gradient (value 4) must NOT be in the sum; exactly 6 of the
  // others must be. The replacement is the next arrival (node 6, value 7).
  float expected = 0;
  for (const ObjectID& id : result->reduced) {
    for (NodeID n = 0; n < kNodes; ++n) {
      if (id == ObjectID::FromName("grad").WithIndex(n)) expected += float(n) + 1;
    }
  }
  EXPECT_EQ(value->values()[0], expected);
  EXPECT_EQ(value->values()[kElems - 1], expected);
  for (const ObjectID& id : result->reduced) {
    EXPECT_NE(id, ObjectID::FromName("grad").WithIndex(3))
        << "failed node's object must not be reduced";
  }
}

TEST(ReduceFaultTest, FailureWaitsForRejoinWhenNoSpareExists) {
  // Reduce all 4 of 4 sources; kill node 2 mid-reduce; the reduce must stall
  // (not crash), then complete after node 2 rejoins and re-puts.
  constexpr int kNodes = 4;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  constexpr std::size_t kElems = 1024 * 1024;
  const auto sources = PutGradients(cluster, kElems);
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.simulator().ScheduleAt(Milliseconds(1), [&] { cluster.KillNode(2); });
  cluster.simulator().ScheduleAt(Seconds(2), [&] {
    cluster.RecoverNode(2);
    // Lineage reconstruction re-runs the task that produced the gradient.
    cluster.client(2).Put(ObjectID::FromName("grad").WithIndex(2),
                          store::Buffer::FromValues(Constant(kElems, 3.0f)));
  });
  cluster.RunAll();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->values()[0], SumTo(kNodes));
  EXPECT_GT(cluster.Now(), Seconds(2));  // really waited for the rejoin
}

TEST(ReduceFaultTest, FailedInternalNodeClearsAncestorsOnly) {
  // Build a chain (d=1) of 6; kill the host in the middle. All ancestors
  // (positions above it) must recompute; the final sum must use the
  // replacement object.
  constexpr int kNodes = 8;  // 6 in tree, 2 spares
  HopliteCluster cluster(TestOptions(kNodes, 1));
  constexpr std::size_t kElems = 1024 * 1024;
  std::vector<SimDuration> at;
  for (int i = 0; i < kNodes; ++i) at.push_back(Milliseconds(10) * i);
  const auto sources = PutGradients(cluster, kElems, at);
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(7)
      .Reduce(ReduceSpec{target, sources, 6, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(7).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.simulator().ScheduleAt(Milliseconds(35), [&] { cluster.KillNode(1); });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(value.has_value());
  float expected = 0;
  for (const ObjectID& id : result->reduced) {
    for (NodeID n = 0; n < kNodes; ++n) {
      if (id == ObjectID::FromName("grad").WithIndex(n)) expected += float(n) + 1;
    }
  }
  EXPECT_EQ(result->reduced.size(), 6u);
  EXPECT_EQ(value->values()[0], expected);
}

TEST(ReduceFaultTest, MultipleFailuresDuringOneReduce) {
  constexpr int kNodes = 12;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  constexpr std::size_t kElems = 512 * 1024;  // 2 MB
  std::vector<SimDuration> at;
  for (int i = 0; i < kNodes; ++i) at.push_back(Milliseconds(15) * i);
  const auto sources = PutGradients(cluster, kElems, at);
  const ObjectID target = ObjectID::FromName("sum");
  std::optional<ReduceResult> result;
  std::optional<store::Buffer> value;
  cluster.client(0)
      .Reduce(ReduceSpec{target, sources, 8, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { result = r; });
  cluster.client(0).Get(target).Then([&](const store::Buffer& b) { value = b; });
  cluster.simulator().ScheduleAt(Milliseconds(40), [&] { cluster.KillNode(2); });
  cluster.simulator().ScheduleAt(Milliseconds(90), [&] { cluster.KillNode(5); });
  cluster.RunAll();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(value.has_value());
  float expected = 0;
  for (const ObjectID& id : result->reduced) {
    for (NodeID n = 0; n < kNodes; ++n) {
      if (id == ObjectID::FromName("grad").WithIndex(n)) expected += float(n) + 1;
    }
  }
  EXPECT_EQ(result->reduced.size(), 8u);
  EXPECT_EQ(value->values()[0], expected);
  for (const ObjectID& id : result->reduced) {
    EXPECT_NE(id, ObjectID::FromName("grad").WithIndex(2));
    EXPECT_NE(id, ObjectID::FromName("grad").WithIndex(5));
  }
}

TEST(ReduceFaultTest, SessionsAreTornDownAfterCompletion) {
  constexpr int kNodes = 6;
  HopliteCluster cluster(TestOptions(kNodes, 2));
  const auto sources = PutGradients(cluster, 64 * 1024);
  const ObjectID target = ObjectID::FromName("sum");
  cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
  cluster.RunAll();
  for (NodeID n = 0; n < kNodes; ++n) {
    EXPECT_EQ(cluster.client(n).active_reduce_sessions(), 0u) << "node " << n;
    EXPECT_EQ(cluster.client(n).active_coordinators(), 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace hoplite::core
