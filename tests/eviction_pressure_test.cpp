// Eviction-under-pressure regression tests: the paths that only fire when
// `store_capacity_bytes` is small enough for LRU eviction to race live
// protocol activity — the transfer-source Ref/Unref guard, Delete-vs-evict
// ordering, and the client's evicted-since-granted (stale directory
// location) retry paths, all exercised deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"

namespace hoplite::core {
namespace {

HopliteCluster::Options TinyStoreOptions(int nodes, std::int64_t capacity) {
  HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.store_capacity_bytes = capacity;
  return options;
}

/// Fills node `holder`'s store with `count` 1 MB replicas fetched from
/// `producer`, pushing older entries towards eviction.
void FillWithReplicas(HopliteCluster& cluster, NodeID producer, NodeID holder, int count,
                      const char* tag) {
  for (int i = 0; i < count; ++i) {
    const ObjectID filler = ObjectID::FromName(tag).WithIndex(i);
    cluster.client(producer).Put(filler, store::Buffer::OfSize(MB(1)));
    (void)cluster.client(holder).Get(filler, GetOptions{.read_only = true});
    cluster.RunAll();
  }
}

// ----------------------------------------------------------------------
// Evict-while-transfer-source: the Ref/Unref guard.
// ----------------------------------------------------------------------

TEST(EvictionPressureTest, TransferSourceSurvivesCapacityPressureUntilStreamEnds) {
  // Node 1 holds a 1 MB replica of A and is granted as the sender for node
  // 3's fetch (node 0, the primary, is busy serving node 2). Mid-stream,
  // node 1 Puts a 1 MB primary of its own, blowing past its 1.5 MB
  // capacity. The push session's store Ref must keep A alive until the
  // stream finishes; only then may LRU reap it.
  HopliteCluster cluster(TinyStoreOptions(4, MB(1) + MB(1) / 2));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(0).Put(a, store::Buffer::OfSize(MB(1)));
  (void)cluster.client(1).Get(a, GetOptions{.read_only = true});
  cluster.RunAll();
  ASSERT_TRUE(cluster.store(1).IsComplete(a));

  // Both fetches race: the claim scan hands node 0 to node 2 (marking it
  // busy) and node 1 to node 3.
  std::optional<store::Buffer> got2;
  std::optional<store::Buffer> got3;
  cluster.client(2).Get(a, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    got2 = b;
  });
  cluster.client(3).Get(a, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    got3 = b;
  });

  // While node 1 streams A to node 3 (a 1 MB transfer takes ~850 us on a
  // 10 Gbps NIC, starting after ~260 us of claim latency), it creates a
  // local primary that exceeds capacity.
  bool guard_held_mid_stream = false;
  cluster.simulator().ScheduleAfter(Microseconds(600), [&] {
    ASSERT_GT(cluster.client(1).active_push_sessions(), 0u)
        << "test setup: node 1 must be mid-stream here";
    cluster.client(1).Put(ObjectID::FromName("B"), store::Buffer::OfSize(MB(1)));
    // Over capacity, but A is reffed by the push session and B is a pinned
    // primary: nothing may be evicted yet.
    guard_held_mid_stream =
        cluster.store(1).Contains(a) && cluster.store(1).evictions() == 0;
  });
  cluster.RunAll();

  EXPECT_TRUE(guard_held_mid_stream) << "Ref guard must hold while the stream runs";
  ASSERT_TRUE(got2.has_value());
  ASSERT_TRUE(got3.has_value());
  EXPECT_EQ(got3->size(), MB(1)) << "the receiver must get the full object";
  // With the stream over, the Unref made A evictable and the store shrank
  // back under capacity.
  EXPECT_EQ(cluster.store(1).evictions(), 1u);
  EXPECT_FALSE(cluster.store(1).Contains(a));
  EXPECT_LE(cluster.store(1).used_bytes(), cluster.store(1).capacity_bytes());
  EXPECT_EQ(cluster.store(1).peak_used_bytes(), MB(2));
}

// ----------------------------------------------------------------------
// Delete-vs-evict ordering.
// ----------------------------------------------------------------------

TEST(EvictionPressureTest, DeleteOfAnAlreadyEvictedReplicaIsCleanOnBothSides) {
  // A's replica on node 1 is LRU-evicted, then the framework Deletes A.
  // The purge must not double-count the eviction, must clear the primary,
  // and must leave both stores consistent.
  HopliteCluster cluster(TinyStoreOptions(3, MB(3)));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(0).Put(a, store::Buffer::OfSize(MB(1)));
  (void)cluster.client(1).Get(a, GetOptions{.read_only = true});
  cluster.RunAll();

  FillWithReplicas(cluster, /*producer=*/2, /*holder=*/1, 3, "filler");
  EXPECT_FALSE(cluster.store(1).Contains(a)) << "A must have been LRU-evicted";
  const std::uint64_t evictions_before = cluster.store(1).evictions();

  bool deleted = false;
  cluster.client(0).Delete(a).Then([&] { deleted = true; });
  cluster.RunAll();
  EXPECT_TRUE(deleted);
  EXPECT_FALSE(cluster.store(0).Contains(a));
  EXPECT_FALSE(cluster.directory().HasObject(a));
  EXPECT_EQ(cluster.store(1).evictions(), evictions_before)
      << "a Delete purge is not an eviction";
}

TEST(EvictionPressureTest, DeleteWinsOverTheEvictionGuardMidTransfer) {
  // Delete lands while node 1 streams a 12 MB (3-chunk) A to node 2, i.e.
  // while the push session still holds the store Ref. On the sender, Remove
  // must win over the guard immediately (the framework knows best; the
  // pending Unref becomes the documented no-op, not an eviction). On the
  // receiver, the purge control message queues behind the two in-flight
  // chunks on its serialized ingress, then kills the fetch: the pending Get
  // fails with kDeleted and the third chunk is never sent.
  HopliteCluster cluster(TinyStoreOptions(3, 0));  // unlimited: isolate Delete
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(1).Put(a, store::Buffer::OfSize(MB(12)));
  cluster.RunAll();

  std::optional<RefError> get_error;
  bool get_succeeded = false;
  cluster.client(2)
      .Get(a, GetOptions{.read_only = true})
      .Then([&] { get_succeeded = true; })
      .OnError([&](const RefError& e) { get_error = e; });

  bool sender_purged_mid_stream = false;
  cluster.simulator().ScheduleAfter(Milliseconds(1), [&] {
    ASSERT_GT(cluster.client(1).active_push_sessions(), 0u)
        << "test setup: the stream must be active when Delete lands";
    cluster.client(0).Delete(a).Then([&] {
      // One control latency later the sender has purged: entry gone despite
      // the push session's Ref, stream torn down, nothing counted as an
      // LRU eviction.
      cluster.simulator().ScheduleAfter(Microseconds(100), [&] {
        sender_purged_mid_stream = !cluster.store(1).Contains(a) &&
                                   cluster.client(1).active_push_sessions() == 0 &&
                                   cluster.store(1).evictions() == 0;
      });
    });
  });
  cluster.RunAll();

  EXPECT_TRUE(sender_purged_mid_stream) << "Delete must purge the reffed sender copy";
  EXPECT_FALSE(get_succeeded);
  ASSERT_TRUE(get_error.has_value()) << "the pending Get must observe the Delete";
  EXPECT_EQ(get_error->code, RefErrorCode::kDeleted);
  EXPECT_FALSE(cluster.store(2).Contains(a));
  EXPECT_EQ(cluster.store(2).evictions(), 0u);
  EXPECT_FALSE(cluster.client(2).HasFetchSession(a));
  EXPECT_FALSE(cluster.directory().HasObject(a));
}

TEST(EvictionPressureTest, InFlightDataBeatsTheDeleteOnTheReceiversIngress) {
  // The single-chunk flavour of the same race: the whole 4 MB object is
  // already on the wire when Delete is issued, and the purge control
  // message is FIFO-ordered behind it on the receiver's serialized
  // ingress. The Get legitimately completes — a Delete cannot overtake
  // data already in flight — and the purge then removes every copy.
  HopliteCluster cluster(TinyStoreOptions(3, 0));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(1).Put(a, store::Buffer::OfSize(MB(4)));
  cluster.RunAll();

  std::optional<store::Buffer> got;
  cluster.client(2).Get(a, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    got = b;
  });
  cluster.simulator().ScheduleAfter(Milliseconds(1), [&] { cluster.client(0).Delete(a); });
  cluster.RunAll();

  ASSERT_TRUE(got.has_value()) << "in-flight data is delivered before the purge";
  EXPECT_EQ(got->size(), MB(4));
  EXPECT_FALSE(cluster.store(1).Contains(a));
  EXPECT_FALSE(cluster.store(2).Contains(a)) << "the purge still reaps the landed copy";
  EXPECT_FALSE(cluster.directory().HasObject(a));
  EXPECT_EQ(cluster.store(2).evictions(), 0u);
}

// ----------------------------------------------------------------------
// Evicted-since-granted: the stale-location retry paths.
// ----------------------------------------------------------------------

TEST(EvictionPressureTest, EvictedSinceGrantedSenderIsRetriedAndRetracted) {
  // Node 1's replica of the object is evicted but its directory location
  // survives (eviction is lazy by design). The claim scan starts at a
  // per-object rotation of the sorted location table {1, 2}; the name "D"
  // hashes to rotation start 0, so the stale node 1 is granted first. The
  // StartPush bounce (HandleSenderGone) must retract the stale location —
  // not merely return it to the pool, which would re-grant the same empty
  // sender forever — and the re-claim must complete the fetch from the
  // surviving primary on node 2.
  HopliteCluster cluster(TinyStoreOptions(4, MB(3)));
  const ObjectID a = ObjectID::FromName("D");
  cluster.client(2).Put(a, store::Buffer::OfSize(MB(1)));
  (void)cluster.client(1).Get(a, GetOptions{.read_only = true});
  cluster.RunAll();

  FillWithReplicas(cluster, /*producer=*/3, /*holder=*/1, 3, "retry-filler");
  ASSERT_FALSE(cluster.store(1).Contains(a));
  ASSERT_EQ(cluster.directory().LocationsOf(a), (std::vector<NodeID>{1, 2}))
      << "the stale location must still be registered (lazy eviction)";

  std::optional<store::Buffer> got;
  cluster.client(0).Get(a, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    got = b;
  });
  cluster.RunAll();

  ASSERT_TRUE(got.has_value()) << "the retry path must terminate";
  EXPECT_EQ(got->size(), MB(1));
  const auto locations = cluster.directory().LocationsOf(a);
  EXPECT_TRUE(std::find(locations.begin(), locations.end(), 1) == locations.end())
      << "the bounce must retract node 1's stale location";
  EXPECT_TRUE(std::find(locations.begin(), locations.end(), 2) != locations.end());
}

TEST(EvictionPressureTest, StaleSelfLocationIsRetractedAndRefetched) {
  // The second stale flavour: the *claimant itself* is listed as a complete
  // location, but its replica was evicted. The directory answers
  // "local copy"; the client must notice its store is empty, retract its
  // own stale location, and re-claim from a real holder instead of
  // silently dropping the Get.
  HopliteCluster cluster(TinyStoreOptions(3, MB(3)));
  const ObjectID a = ObjectID::FromName("A");
  cluster.client(0).Put(a, store::Buffer::OfSize(MB(1)));
  (void)cluster.client(1).Get(a, GetOptions{.read_only = true});
  cluster.RunAll();

  FillWithReplicas(cluster, /*producer=*/2, /*holder=*/1, 3, "self-filler");
  ASSERT_FALSE(cluster.store(1).Contains(a));

  std::optional<store::Buffer> got;
  cluster.client(1).Get(a, GetOptions{.read_only = true}).Then([&](const store::Buffer& b) {
    got = b;
  });
  cluster.RunAll();

  ASSERT_TRUE(got.has_value()) << "the re-read of an evicted self-copy must complete";
  EXPECT_EQ(got->size(), MB(1));
  EXPECT_TRUE(cluster.store(1).IsComplete(a)) << "the replica was re-fetched";
}

}  // namespace
}  // namespace hoplite::core
