// Cross-module integration tests for the corners the main suites don't
// reach: eviction-driven re-claims, Delete racing active transfers,
// chained reduces under failure, inline-cache shard failover, heterogeneous
// networks (§6), and concurrent reduces over shared sources.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/units.h"
#include "core/client.h"
#include "core/cluster.h"

namespace hoplite::core {
namespace {

HopliteCluster::Options Opts(int nodes) {
  HopliteCluster::Options options;
  options.network.num_nodes = nodes;
  options.network.failure_detection_delay = Milliseconds(100);
  return options;
}

TEST(EvictionTest, ReceiverReclaimsWhenGrantedSenderWasEvicted) {
  // Node 1 holds a replica that gets LRU-evicted; a later receiver that the
  // directory routes to node 1 must fall back via HandleSenderGone.
  auto options = Opts(4);
  options.store_capacity_bytes = MB(10);
  HopliteCluster cluster(options);
  const ObjectID hot = ObjectID::FromName("hot");
  const ObjectID filler = ObjectID::FromName("filler");
  cluster.client(0).Put(hot, store::Buffer::OfSize(MB(6)));
  cluster.client(1).Get(hot).Then([](const store::Buffer&) {});
  cluster.RunAll();
  ASSERT_TRUE(cluster.store(1).Contains(hot));
  // Evict node 1's replica by filling its store with its own primary.
  cluster.client(1).Put(filler, store::Buffer::OfSize(MB(6)));
  cluster.RunAll();
  EXPECT_FALSE(cluster.store(1).Contains(hot)) << "replica should be evicted";
  // The directory may still grant node 1; the receiver must recover.
  std::optional<store::Buffer> got;
  cluster.client(2).Get(hot).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), MB(6));
}

TEST(EvictionTest, PinnedPrimarySurvivesPressure) {
  auto options = Opts(2);
  options.store_capacity_bytes = MB(8);
  HopliteCluster cluster(options);
  const ObjectID primary = ObjectID::FromName("primary");
  cluster.client(0).Put(primary, store::Buffer::OfSize(MB(6)));
  cluster.RunAll();
  // Fetch replicas of other objects to pressure the store.
  for (int i = 0; i < 3; ++i) {
    const ObjectID other = ObjectID::FromName("other").WithIndex(i);
    cluster.client(1).Put(other, store::Buffer::OfSize(MB(5)));
    cluster.client(0).Get(other).Then([](const store::Buffer&) {});
    cluster.RunAll();
  }
  // The primary is pinned (§6 guarantees one fetchable copy) even though the
  // store is over-committed.
  EXPECT_TRUE(cluster.store(0).Contains(primary));
  std::optional<store::Buffer> got;
  cluster.client(1).Get(primary).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  EXPECT_TRUE(got.has_value());
}

TEST(DeleteTest, DeleteDuringActiveBroadcastDropsEverything) {
  HopliteCluster cluster(Opts(4));
  const ObjectID object = ObjectID::FromName("doomed");
  cluster.client(0).Put(object, store::Buffer::OfSize(MB(64)));
  int delivered = 0;
  for (NodeID r = 1; r < 4; ++r) {
    cluster.client(r).Get(object).Then([&](const store::Buffer&) { ++delivered; });
  }
  // Delete fires while transfers are mid-flight (64 MB takes ~55 ms).
  cluster.simulator().ScheduleAt(Milliseconds(10), [&] { cluster.client(0).Delete(object); });
  cluster.RunAll();
  // The framework contract says Delete only fires when no task references
  // the id; our concern here is purely that nothing crashes, no session
  // leaks, and the object is gone everywhere.
  for (NodeID n = 0; n < 4; ++n) {
    EXPECT_FALSE(cluster.store(n).Contains(object)) << "node " << n;
    EXPECT_EQ(cluster.client(n).active_push_sessions(), 0u) << "node " << n;
  }
  EXPECT_FALSE(cluster.directory().HasObject(object));
  EXPECT_LE(delivered, 3);
}

TEST(ChainedReduceTest, FailureInUpstreamReducePropagatesCorrectly) {
  // total = reduce({partial, g4..g7}) where partial = reduce(g0..g3); kill
  // a contributor of the UPSTREAM reduce mid-flight; both reduces must
  // complete and the final sum must match the surviving membership.
  constexpr int kNodes = 10;  // spares for the upstream replacement
  HopliteCluster cluster(Opts(kNodes));
  constexpr std::size_t kElems = 4 * 1024 * 1024;  // 16 MB: Put takes ~1.7 ms
  std::vector<ObjectID> grads;
  for (NodeID n = 0; n < 8; ++n) {
    const ObjectID g = ObjectID::FromName("cg").WithIndex(n);
    grads.push_back(g);
    cluster.simulator().ScheduleAt(Milliseconds(10) * n, [&cluster, n, g] {
      cluster.client(n).Put(
          g, store::Buffer::FromValues(std::vector<float>(kElems, float(n) + 1)));
    });
  }
  const ObjectID partial = ObjectID::FromName("partial");
  const ObjectID total = ObjectID::FromName("total");
  std::optional<ReduceResult> first;
  std::vector<ObjectID> first_sources(grads.begin(), grads.begin() + 6);
  cluster.client(0)
      .Reduce(ReduceSpec{partial, first_sources, 4, store::ReduceOp::kSum})
      .Then([&](const ReduceResult& r) { first = r; });
  std::vector<ObjectID> second_sources{partial, grads[6], grads[7]};
  std::optional<store::Buffer> value;
  cluster.client(0).Reduce(ReduceSpec{total, second_sources, 0, store::ReduceOp::kSum});
  cluster.client(0).Get(total).Then([&](const store::Buffer& b) { value = b; });
  // Kill node 2 while its 16 MB gradient is still being Put (the worker->
  // store copy started at 20 ms and needs ~1.7 ms): its contribution cannot
  // have reached the tree, so a spare must replace it.
  cluster.simulator().ScheduleAt(Milliseconds(21), [&] { cluster.KillNode(2); });
  cluster.RunAll();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(value.has_value());
  float expected = 7 + 8;  // g6 + g7
  for (const ObjectID& id : first->reduced) {
    for (NodeID n = 0; n < 8; ++n) {
      if (id == ObjectID::FromName("cg").WithIndex(n)) expected += float(n) + 1;
    }
  }
  EXPECT_EQ(value->values().front(), expected);
  for (const ObjectID& id : first->reduced) {
    EXPECT_NE(id, ObjectID::FromName("cg").WithIndex(2));
  }
}

TEST(InlineShardTest, SmallObjectsSurviveShardNodeFailure) {
  HopliteCluster cluster(Opts(6));
  // Find an object whose home shard is node 3, then kill node 3 and check
  // the payload still serves (replicated-directory failover, §6).
  ObjectID victim_homed;
  for (int i = 0; i < 64; ++i) {
    const ObjectID candidate = ObjectID::FromName("probe").WithIndex(i);
    if (cluster.directory().ShardOf(candidate) == 3) {
      victim_homed = candidate;
      break;
    }
  }
  ASSERT_FALSE(victim_homed.IsNil());
  cluster.client(0).Put(victim_homed, store::Buffer::FromValues({1, 2, 3}));
  cluster.RunAll();
  cluster.KillNode(3);
  cluster.simulator().RunUntil(cluster.Now() + Milliseconds(200));
  std::optional<store::Buffer> got;
  cluster.client(1).Get(victim_homed).Then([&](const store::Buffer& b) { got = b; });
  cluster.RunAll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->values(), (std::vector<float>{1, 2, 3}));
  // And a fresh inline Put routed at the dead shard also works.
  ObjectID fresh;
  for (int i = 64; i < 256; ++i) {
    const ObjectID candidate = ObjectID::FromName("probe").WithIndex(i);
    if (cluster.directory().ShardOf(candidate) == 3) {
      fresh = candidate;
      break;
    }
  }
  ASSERT_FALSE(fresh.IsNil());
  std::optional<store::Buffer> got2;
  cluster.client(2).Put(fresh, store::Buffer::FromValues({9}));
  cluster.client(4).Get(fresh).Then([&](const store::Buffer& b) { got2 = b; });
  cluster.RunAll();
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->values(), (std::vector<float>{9}));
}

TEST(HeterogeneityTest, SlowNodeDoesNotThrottleDisjointTransfers) {
  // §6 "Network Heterogeneity": our fabric supports per-node bandwidth.
  auto options = Opts(4);
  options.network.per_node_bandwidth = {Gbps(10), Gbps(10), Gbps(1), Gbps(10)};
  HopliteCluster cluster(options);
  const ObjectID fast_obj = ObjectID::FromName("fast");
  const ObjectID slow_obj = ObjectID::FromName("slow");
  SimTime fast_done = 0;
  SimTime slow_done = 0;
  cluster.client(0).Put(fast_obj, store::Buffer::OfSize(MB(64)));
  cluster.client(1).Get(fast_obj).Then([&](const store::Buffer&) {
    fast_done = cluster.Now();
  });
  cluster.client(2).Put(slow_obj, store::Buffer::OfSize(MB(64)));
  cluster.client(3).Get(slow_obj).Then([&](const store::Buffer&) {
    slow_done = cluster.Now();
  });
  cluster.RunAll();
  EXPECT_GT(fast_done, 0);
  EXPECT_GT(slow_done, 0);
  // The 1 Gbps node's transfer takes ~10x longer; the fast pair is unaffected.
  EXPECT_GT(ToSeconds(slow_done), 5 * ToSeconds(fast_done));
  EXPECT_LT(ToSeconds(fast_done), 0.1);
}

TEST(HeterogeneityTest, BroadcastCompletesOnHeterogeneousFabric) {
  auto options = Opts(6);
  options.network.per_node_bandwidth = {Gbps(10), Gbps(2), Gbps(10),
                                        Gbps(5),  Gbps(10), Gbps(2)};
  HopliteCluster cluster(options);
  const ObjectID object = ObjectID::FromName("mixed");
  cluster.client(0).Put(object, store::Buffer::OfSize(MB(32)));
  int got = 0;
  for (NodeID r = 1; r < 6; ++r) {
    cluster.client(r).Get(object).Then([&](const store::Buffer&) { ++got; });
  }
  cluster.RunAll();
  EXPECT_EQ(got, 5);
}

TEST(ConcurrentReduceTest, TwoReducesShareTheSameSources) {
  constexpr int kNodes = 6;
  HopliteCluster cluster(Opts(kNodes));
  std::vector<ObjectID> sources;
  for (NodeID n = 0; n < kNodes; ++n) {
    const ObjectID g = ObjectID::FromName("shared").WithIndex(n);
    sources.push_back(g);
    cluster.client(n).Put(
        g, store::Buffer::FromValues(std::vector<float>(65536, float(n) + 1)));
  }
  std::optional<store::Buffer> sum;
  std::optional<store::Buffer> maxv;
  cluster.client(0).Reduce(
      ReduceSpec{ObjectID::FromName("sum"), sources, 0, store::ReduceOp::kSum});
  cluster.client(1).Reduce(
      ReduceSpec{ObjectID::FromName("max"), sources, 0, store::ReduceOp::kMax});
  cluster.client(0).Get(ObjectID::FromName("sum")).Then([&](const store::Buffer& b) {
    sum = b;
  });
  cluster.client(1).Get(ObjectID::FromName("max")).Then([&](const store::Buffer& b) {
    maxv = b;
  });
  cluster.RunAll();
  ASSERT_TRUE(sum.has_value());
  ASSERT_TRUE(maxv.has_value());
  EXPECT_EQ(sum->values().front(), 21.0f);   // 1+..+6
  EXPECT_EQ(maxv->values().front(), 6.0f);
}

TEST(RejoinTest, RecoveredNodeServesAsBroadcastIntermediate) {
  HopliteCluster cluster(Opts(4));
  const ObjectID object = ObjectID::FromName("x");
  cluster.client(0).Put(object, store::Buffer::OfSize(MB(16)));
  cluster.client(1).Get(object).Then([](const store::Buffer&) {});
  cluster.RunAll();
  cluster.KillNode(1);
  cluster.simulator().RunUntil(cluster.Now() + Milliseconds(200));
  cluster.RecoverNode(1);
  // The recovered node fetches again (fresh store) and then serves node 2.
  int got = 0;
  cluster.client(1).Get(object).Then([&](const store::Buffer&) { ++got; });
  cluster.client(2).Get(object).Then([&](const store::Buffer&) { ++got; });
  cluster.client(3).Get(object).Then([&](const store::Buffer&) { ++got; });
  cluster.RunAll();
  EXPECT_EQ(got, 3);
}

TEST(StressTest, ManyRoundsOfAllreduceStayLeakFree) {
  constexpr int kNodes = 8;
  HopliteCluster cluster(Opts(kNodes));
  for (int round = 0; round < 10; ++round) {
    std::vector<ObjectID> sources;
    for (NodeID n = 0; n < kNodes; ++n) {
      const ObjectID g = ObjectID::FromName("s").WithIndex(n).WithIndex(round);
      sources.push_back(g);
      cluster.client(n).Put(g, store::Buffer::OfSize(MB(4)));
    }
    const ObjectID target = ObjectID::FromName("t").WithIndex(round);
    cluster.client(0).Reduce(ReduceSpec{target, sources, 0, store::ReduceOp::kSum});
    int got = 0;
    for (NodeID n = 0; n < kNodes; ++n) {
      cluster.client(n)
          .Get(target, GetOptions{.read_only = true})
          .Then([&](const store::Buffer&) { ++got; });
    }
    cluster.RunAll();
    ASSERT_EQ(got, kNodes) << "round " << round;
    // Garbage-collect the round.
    for (const ObjectID& g : sources) cluster.client(0).Delete(g);
    cluster.client(0).Delete(target);
    cluster.RunAll();
  }
  for (NodeID n = 0; n < kNodes; ++n) {
    EXPECT_EQ(cluster.client(n).active_reduce_sessions(), 0u) << "node " << n;
    EXPECT_EQ(cluster.client(n).active_coordinators(), 0u) << "node " << n;
    EXPECT_EQ(cluster.client(n).active_push_sessions(), 0u) << "node " << n;
    EXPECT_TRUE(cluster.store(n).ListObjects().empty()) << "node " << n;
  }
}

}  // namespace
}  // namespace hoplite::core
